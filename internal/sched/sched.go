// Package sched is the computation/communication overlap pass: a
// post-codegen schedule transformation that converts blocking
// communication in the generated SPMD program to post-early/wait-late
// form, in the shape of the paper's §7 pipelining discussion (and of
// PSyclone's movable HaloExchange schedule nodes).
//
// Two transformations run over every unit body:
//
//   - Halo split: a run of (possibly guarded) send/recv statements
//     followed by an eligible compute loop is rewritten so each recv
//     becomes a PostRecv in place (guard kept), the loop runs its
//     interior iterations — the ones that provably touch no halo cell
//     — before the WaitRecv statements, and the peeled boundary
//     iterations run after them. The wait then stalls only for the
//     part of the message flight the interior compute failed to cover.
//
//   - Broadcast hoist: a blocking Broadcast is split into a PostBcast
//     hoisted above the longest safe suffix of its predecessors
//     (statements that provably neither communicate nor write anything
//     the broadcast reads) and a WaitBcast in the original position,
//     so the root's tree sends are in flight while every processor
//     runs the intervening computation.
//
// Every considered site gets an Applied or Missed explain remark under
// pass "sched". The pass preserves observable semantics exactly: peeled
// iterations re-run after the waits in a loop whose iterations are
// proven independent, so each array element is computed by the same
// expression reading the same values as the blocking schedule.
package sched

import (
	"fmt"

	"fortd/internal/ast"
	"fortd/internal/explain"
)

// Apply rewrites prog's unit bodies in place and returns the number of
// sites transformed (split recvs plus hoisted broadcasts). Tags
// assigned to post/wait pairs are unique program-wide, so the rewrite
// is deterministic and pairs cannot collide across procedures.
func Apply(prog *ast.Program, ec *explain.Collector) int {
	p := &pass{prog: prog, ec: ec}
	for _, u := range prog.Units {
		u.Body = p.rewriteBody(u, u.Body)
	}
	return p.applied
}

type pass struct {
	prog    *ast.Program
	ec      *explain.Collector
	tag     int
	applied int
}

func (p *pass) nextTag() int { p.tag++; return p.tag }

// rewriteBody transforms one statement list, recursing into nested
// control flow first so halo exchanges inside a time-step loop are
// seen at their own nesting level.
func (p *pass) rewriteBody(u *ast.Procedure, body []ast.Stmt) []ast.Stmt {
	body = p.dropRedundantBcasts(u, body)
	var pre []ast.Stmt
	for _, s := range body {
		switch st := s.(type) {
		case *ast.Do:
			// redundancy elimination must see the loop body before the
			// lookahead turns its leading broadcast into a wait, and the
			// lookahead runs on the untransformed shape (it matches the
			// codegen output) and may emit a prologue post that belongs
			// just before the loop
			st.Body = p.dropRedundantBcasts(u, st.Body)
			pre = append(pre, p.tryLookahead(u, st)...)
			st.Body = p.rewriteBody(u, st.Body)
		case *ast.If:
			st.Then = p.rewriteBody(u, st.Then)
			st.Else = p.rewriteBody(u, st.Else)
		}
		pre = append(pre, s)
	}
	body = pre
	var out []ast.Stmt
	for i := 0; i < len(body); {
		if n, repl, ok := p.tryHaloSplit(u, body, i); ok {
			out = append(out, repl...)
			i += n
			continue
		}
		if bc, ok := body[i].(*ast.Broadcast); ok {
			out = p.tryBcastHoist(u, out, bc)
			i++
			continue
		}
		out = append(out, body[i])
		i++
	}
	return out
}

// ---------------------------------------------------------------------------
// Halo split

// asComm classifies a statement as one element of a halo-exchange run:
// a Send or Recv, bare or wrapped in a single-statement guard.
func asComm(s ast.Stmt) (guard *ast.If, send *ast.Send, recv *ast.Recv) {
	inner := s
	if g, ok := s.(*ast.If); ok {
		if len(g.Then) != 1 || len(g.Else) != 0 {
			return nil, nil, nil
		}
		guard, inner = g, g.Then[0]
	}
	switch st := inner.(type) {
	case *ast.Send:
		return guard, st, nil
	case *ast.Recv:
		return guard, nil, st
	}
	return nil, nil, nil
}

// tryHaloSplit matches a maximal run of send/recv statements at
// body[i] followed by a Do loop. On a proven-safe match it returns the
// post-early/wait-late replacement; on a match that fails a safety
// condition it emits Missed remarks and returns the original
// statements unchanged (consumed all the same, so the run is
// considered exactly once).
func (p *pass) tryHaloSplit(u *ast.Procedure, body []ast.Stmt, i int) (int, []ast.Stmt, bool) {
	j := i
	nrecv := 0
	for j < len(body) {
		_, snd, rcv := asComm(body[j])
		if snd == nil && rcv == nil {
			break
		}
		if rcv != nil {
			nrecv++
		}
		j++
	}
	if j == i || nrecv == 0 || j >= len(body) {
		return 0, nil, false
	}
	loop, ok := body[j].(*ast.Do)
	if !ok {
		return 0, nil, false
	}
	run := body[i : j+1]
	consumed := j + 1 - i

	miss := func(reason string) (int, []ast.Stmt, bool) {
		for _, s := range body[i:j] {
			if _, _, rcv := asComm(s); rcv != nil {
				p.ec.Addf(explain.Missed, "sched", u.Name, rcv.Pos().Line,
					"overlap-halo", "recv not split: %s", reason)
			}
		}
		return consumed, run, true
	}

	if loop.Step != nil && !isIntLit(loop.Step, 1) {
		return miss("following loop has non-unit step")
	}
	// the peel dimension is the one every recv's section is thin in
	// (width provably <= 1): the ghost row/column of a halo exchange
	peelDim := -1
	var recvNames = map[string]bool{}
	for _, s := range body[i:j] {
		_, _, rcv := asComm(s)
		if rcv == nil {
			continue
		}
		recvNames[rcv.Array] = true
		d := thinDim(rcv.Sec)
		if d < 0 {
			return miss("halo section has no provably-thin dimension")
		}
		if peelDim >= 0 && d != peelDim {
			return miss("recvs disagree on the halo dimension")
		}
		peelDim = d
	}
	assigns, reason := collectLoopAssigns(loop.Body)
	if reason != "" {
		return miss(reason)
	}

	// iteration independence: every array written in the loop must be
	// referenced (read or written) only at the loop variable itself in
	// some fixed dimension, so iteration v's footprint on written data
	// is confined to slice v and the peeled iterations may run after
	// the interior ones
	written := map[string]bool{}
	for _, a := range assigns {
		ref, ok := a.Lhs.(*ast.ArrayRef)
		if !ok {
			return miss(fmt.Sprintf("loop writes scalar %s (combining order would change)", a.Lhs))
		}
		written[ref.Name] = true
	}
	refs := collectArrayRefs(assigns)
	for name := range written {
		if !hasIndependentDim(refs[name], loop.Var) {
			return miss(fmt.Sprintf("array %s is not accessed uniformly at %s in any dimension", name, loop.Var))
		}
	}

	// peel bounds: how far the loop reads each received array away from
	// the loop variable in the peel dimension
	peelLo, peelHi := 0, 0
	for name := range recvNames {
		for _, r := range refs[name] {
			if len(r.Subs) <= peelDim {
				return miss(fmt.Sprintf("reference %s has no subscript in the halo dimension", r.Name))
			}
			c, ok := offsetFrom(r.Subs[peelDim], loop.Var)
			if !ok {
				return miss(fmt.Sprintf("subscript %s of %s is not %s plus a constant", r.Subs[peelDim], r.Name, loop.Var))
			}
			if -c > peelLo {
				peelLo = -c
			}
			if c > peelHi {
				peelHi = c
			}
		}
	}

	// the received cells must lie outside the loop's own index range in
	// the peel dimension: interior iterations then provably read no
	// halo cell (their reads stay within [lo, hi] by the peel bounds)
	for _, s := range body[i:j] {
		_, _, rcv := asComm(s)
		if rcv == nil {
			continue
		}
		sec := rcv.Sec[peelDim]
		if !atLeast(sec.Hi, loop.Lo, 1) && !atLeast(loop.Hi, sec.Lo, 1) {
			return miss(fmt.Sprintf("cannot prove halo %s(%s:%s) outside loop range %s:%s",
				rcv.Array, sec.Lo, sec.Hi, loop.Lo, loop.Hi))
		}
	}

	// all proofs hold: build the replacement
	lo, hi := loop.Lo, loop.Hi
	var lowPeel, highPeel *ast.Do
	if peelLo > 0 {
		lowPeel = ast.CloneStmt(loop).(*ast.Do)
		lowPeel.Lo = ast.CloneExpr(lo)
		lowPeel.Hi = &ast.FuncCall{Name: "MIN", Args: []ast.Expr{ast.CloneExpr(hi), addConst(lo, peelLo-1)}}
	}
	if peelHi > 0 {
		highPeel = ast.CloneStmt(loop).(*ast.Do)
		highPeel.Lo = &ast.FuncCall{Name: "MAX", Args: []ast.Expr{addConst(lo, peelLo), addConst(hi, -(peelHi - 1))}}
		highPeel.Hi = ast.CloneExpr(hi)
	}

	var repl []ast.Stmt
	var waits []ast.Stmt
	for _, s := range run[:len(run)-1] {
		guard, _, rcv := asComm(s)
		if rcv == nil {
			repl = append(repl, s)
			continue
		}
		tag := p.nextTag()
		post := &ast.PostRecv{Array: rcv.Array, Sec: rcv.Sec, Src: rcv.Src, Tag: tag}
		post.Position = rcv.Pos()
		if guard != nil {
			guard.Then = []ast.Stmt{post}
			repl = append(repl, guard)
		} else {
			repl = append(repl, post)
		}
		// the wait is unguarded: a post whose guard was false leaves
		// nothing registered under the tag, so its wait is a no-op
		wait := &ast.WaitRecv{Array: rcv.Array, Tag: tag}
		wait.Position = rcv.Pos()
		waits = append(waits, wait)
		p.applied++
		p.ec.Addf(explain.Applied, "sched", u.Name, rcv.Pos().Line,
			"overlap-halo", "recv posted early; wait sunk below interior %s-loop (peel %d low, %d high)",
			loop.Var, peelLo, peelHi)
	}
	loop.Lo = addConst(lo, peelLo)
	loop.Hi = addConst(hi, -peelHi)
	repl = append(repl, loop)
	repl = append(repl, waits...)
	if lowPeel != nil {
		repl = append(repl, lowPeel)
	}
	if highPeel != nil {
		repl = append(repl, highPeel)
	}
	return consumed, repl, true
}

// collectLoopAssigns flattens a candidate loop body into its
// assignments, rejecting any statement whose reordering effects the
// pass cannot reason about (calls, control flow, communication).
func collectLoopAssigns(body []ast.Stmt) ([]*ast.Assign, string) {
	var out []*ast.Assign
	for _, s := range body {
		switch st := s.(type) {
		case *ast.Assign:
			out = append(out, st)
		case *ast.Do:
			inner, reason := collectLoopAssigns(st.Body)
			if reason != "" {
				return nil, reason
			}
			out = append(out, inner...)
		default:
			return nil, fmt.Sprintf("loop body contains %s", stmtLabel(s))
		}
	}
	return out, ""
}

// collectArrayRefs indexes every array reference in the assignments
// (both sides, including subscript expressions) by array name.
func collectArrayRefs(assigns []*ast.Assign) map[string][]*ast.ArrayRef {
	refs := map[string][]*ast.ArrayRef{}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.ArrayRef:
			refs[x.Name] = append(refs[x.Name], x)
			for _, sub := range x.Subs {
				walk(sub)
			}
		case *ast.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *ast.Binary:
			walk(x.X)
			walk(x.Y)
		case *ast.Unary:
			walk(x.X)
		}
	}
	for _, a := range assigns {
		walk(a.Lhs)
		walk(a.Rhs)
	}
	return refs
}

// hasIndependentDim reports whether some dimension of every reference
// in refs is subscripted by exactly the identifier v.
func hasIndependentDim(refs []*ast.ArrayRef, v string) bool {
	if len(refs) == 0 {
		return false
	}
	rank := len(refs[0].Subs)
	for d := 0; d < rank; d++ {
		all := true
		for _, r := range refs {
			if len(r.Subs) != rank || !isIdent(r.Subs[d], v) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// thinDim returns the unique dimension of sec whose width is provably
// at most one element (Hi <= Lo), or -1.
func thinDim(sec []ast.SecDim) int {
	dim := -1
	for d, s := range sec {
		if atLeast(s.Hi, s.Lo, 0) {
			if dim >= 0 {
				return -1 // ambiguous
			}
			dim = d
		}
	}
	return dim
}

// ---------------------------------------------------------------------------
// Broadcast hoist

// tryBcastHoist splits bc into a PostBcast placed above the longest
// safe suffix of out and a WaitBcast in bc's position, returning the
// rewritten list. A broadcast with no predecessor at this level is
// left blocking without a remark (there is nothing to overlap); one
// whose immediate predecessor is unsafe gets a Missed remark.
func (p *pass) tryBcastHoist(u *ast.Procedure, out []ast.Stmt, bc *ast.Broadcast) []ast.Stmt {
	if len(out) == 0 {
		return append(out, bc)
	}
	guarded := protectedNames(bc)
	hoist := len(out)
	var blockedBy string
	for j := len(out) - 1; j >= 0; j-- {
		ok, reason := p.safePredecessor(out[j], bc.Array, guarded)
		if !ok {
			blockedBy = reason
			break
		}
		hoist = j
	}
	if hoist == len(out) {
		p.ec.Addf(explain.Missed, "sched", u.Name, bc.Pos().Line,
			"overlap-bcast", "broadcast not posted early: %s", blockedBy)
		return append(out, bc)
	}
	tag := p.nextTag()
	post := &ast.PostBcast{Array: bc.Array, Sec: bc.Sec, Root: bc.Root, Tag: tag}
	post.Position = bc.Pos()
	wait := &ast.WaitBcast{Array: bc.Array, Tag: tag}
	wait.Position = bc.Pos()
	rewritten := append([]ast.Stmt{}, out[:hoist]...)
	rewritten = append(rewritten, post)
	rewritten = append(rewritten, out[hoist:]...)
	rewritten = append(rewritten, wait)
	p.applied++
	p.ec.Addf(explain.Applied, "sched", u.Name, bc.Pos().Line,
		"overlap-bcast", "broadcast posted %d statement(s) early; wait sunk to original position", len(out)-hoist)
	return rewritten
}

// protectedNames collects every identifier and array the broadcast's
// section, root expression and payload depend on: hoisting the post
// above a statement that writes any of them would change what the
// root captures.
func protectedNames(bc *ast.Broadcast) map[string]bool {
	names := map[string]bool{bc.Array: true}
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch x := e.(type) {
		case *ast.Ident:
			names[x.Name] = true
		case *ast.ArrayRef:
			names[x.Name] = true
			for _, s := range x.Subs {
				walk(s)
			}
		case *ast.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *ast.Binary:
			walk(x.X)
			walk(x.Y)
		case *ast.Unary:
			walk(x.X)
		}
	}
	walk(bc.Root)
	for _, d := range bc.Sec {
		walk(d.Lo)
		walk(d.Hi)
	}
	return names
}

// safePredecessor reports whether the post half of a broadcast of
// array arr may move above s: s must not communicate (per-link FIFO
// order must be preserved) and must not write arr or any name the
// broadcast's expressions read.
func (p *pass) safePredecessor(s ast.Stmt, arr string, guarded map[string]bool) (bool, string) {
	switch st := s.(type) {
	case *ast.Assign:
		switch lhs := st.Lhs.(type) {
		case *ast.Ident:
			if guarded[lhs.Name] {
				return false, fmt.Sprintf("assignment writes %s, which the broadcast reads", lhs.Name)
			}
			return true, ""
		case *ast.ArrayRef:
			if guarded[lhs.Name] {
				return false, fmt.Sprintf("assignment writes array %s", lhs.Name)
			}
			return true, ""
		}
		return false, "assignment with unrecognized target"
	case *ast.Call:
		callee := p.prog.Proc(st.Name)
		if callee == nil {
			return false, fmt.Sprintf("call to unknown procedure %s", st.Name)
		}
		if hasComm(p.prog, callee, map[string]bool{}) {
			return false, fmt.Sprintf("call %s contains communication", st.Name)
		}
		for i, a := range st.Args {
			id, ok := a.(*ast.Ident)
			if !ok {
				// non-identifier actuals pass elements by reference; the
				// callee could write through them
				if exprMentions(a, guarded) {
					return false, fmt.Sprintf("call %s receives an expression over protected names", st.Name)
				}
				continue
			}
			if !guarded[id.Name] {
				continue
			}
			if i < len(callee.Params) && writesName(p.prog, callee, callee.Params[i], map[string]bool{}) {
				return false, fmt.Sprintf("call %s may write %s", st.Name, id.Name)
			}
		}
		return true, ""
	default:
		return false, fmt.Sprintf("cannot move past %s", stmtLabel(s))
	}
}

// hasComm reports whether proc's body (transitively through calls)
// contains any communication statement.
func hasComm(prog *ast.Program, proc *ast.Procedure, visited map[string]bool) bool {
	if visited[proc.Name] {
		return false
	}
	visited[proc.Name] = true
	found := false
	ast.WalkStmts(proc.Body, func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.Send, *ast.Recv, *ast.Broadcast, *ast.AllGather,
			*ast.GlobalReduce, *ast.Remap,
			*ast.PostRecv, *ast.WaitRecv, *ast.PostBcast, *ast.WaitBcast:
			found = true
		case *ast.Call:
			callee := prog.Proc(st.Name)
			if callee == nil || hasComm(prog, callee, visited) {
				found = true
			}
		}
		return !found
	})
	return found
}

// writesName reports whether proc (transitively) may assign to the
// variable or array named name, following it through call arguments.
func writesName(prog *ast.Program, proc *ast.Procedure, name string, visited map[string]bool) bool {
	key := proc.Name + "\x00" + name
	if visited[key] {
		return false
	}
	visited[key] = true
	found := false
	ast.WalkStmts(proc.Body, func(s ast.Stmt) bool {
		switch st := s.(type) {
		case *ast.Assign:
			switch lhs := st.Lhs.(type) {
			case *ast.Ident:
				if lhs.Name == name {
					found = true
				}
			case *ast.ArrayRef:
				if lhs.Name == name {
					found = true
				}
			}
		case *ast.Call:
			callee := prog.Proc(st.Name)
			if callee == nil {
				found = true
				break
			}
			for i, a := range st.Args {
				if id, ok := a.(*ast.Ident); ok && id.Name == name {
					if i < len(callee.Params) && writesName(prog, callee, callee.Params[i], visited) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// exprMentions reports whether e references any of the given names.
func exprMentions(e ast.Expr, names map[string]bool) bool {
	found := false
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		if found {
			return
		}
		switch x := e.(type) {
		case *ast.Ident:
			if names[x.Name] {
				found = true
			}
		case *ast.ArrayRef:
			if names[x.Name] {
				found = true
			}
			for _, s := range x.Subs {
				walk(s)
			}
		case *ast.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *ast.Binary:
			walk(x.X)
			walk(x.Y)
		case *ast.Unary:
			walk(x.X)
		}
	}
	walk(e)
	return found
}

// ---------------------------------------------------------------------------
// Redundant-broadcast elimination

// dropRedundantBcasts deletes a broadcast whose data was already
// delivered by an earlier broadcast in the same statement list: same
// array, same root expression, section contained in the earlier one,
// and nothing in between that writes the array, writes a variable the
// broadcast's expressions read, or communicates. Such a broadcast is a
// pure re-synchronization — every processor already holds the root's
// values — and deleting it removes both the root's injection occupancy
// and the receivers' stall. The codegen layer places one broadcast per
// reference group, so a column broadcast followed by a broadcast of
// one of its elements (dgefa's pivot a(k,k) after the pivot column
// a(1:n,k)) is a common shape.
func (p *pass) dropRedundantBcasts(u *ast.Procedure, body []ast.Stmt) []ast.Stmt {
	out := body[:0]
	for _, s := range body {
		b2, ok := s.(*ast.Broadcast)
		if !ok {
			out = append(out, s)
			continue
		}
		covered := false
		guarded := protectedNames(b2)
		for j := len(out) - 1; j >= 0; j-- {
			b1, ok := out[j].(*ast.Broadcast)
			if ok && b1.Array == b2.Array && exprEq(b1.Root, b2.Root) &&
				p.secContained(u, b1, b2) {
				covered = true
				p.applied++
				p.ec.Addf(explain.Applied, "sched", u.Name, b2.Pos().Line,
					"overlap-redundant", "broadcast removed: section already delivered by the line %d broadcast from the same root, with no intervening writes", b1.Pos().Line)
				break
			}
			if ok, _ := p.safePredecessor(out[j], b2.Array, guarded); !ok {
				break
			}
		}
		if !covered {
			out = append(out, s)
		}
	}
	return out
}

// secContained reports whether b2's section is provably inside b1's,
// dimension by dimension: equal bounds, a constant-offset containment,
// or b1 spanning the array's whole declared extent (any in-bounds
// subscript is then contained).
func (p *pass) secContained(u *ast.Procedure, b1, b2 *ast.Broadcast) bool {
	if len(b1.Sec) != len(b2.Sec) {
		return false
	}
	sym := u.Symbols.Lookup(b1.Array)
	for d := range b1.Sec {
		lo1, hi1 := b1.Sec[d].Lo, b1.Sec[d].Hi
		lo2, hi2 := b2.Sec[d].Lo, b2.Sec[d].Hi
		if exprEq(lo1, lo2) && exprEq(hi1, hi2) {
			continue
		}
		if atLeast(lo2, lo1, 0) && atLeast(hi1, hi2, 0) {
			continue
		}
		if sym != nil && d < len(sym.Dims) {
			declLo := sym.Dims[d].Lo
			if declLo == nil {
				declLo = &ast.IntLit{Value: 1}
			}
			if exprEq(lo1, declLo) && exprEq(hi1, sym.Dims[d].Hi) {
				continue
			}
		}
		return false
	}
	return true
}

// exprEq is structural expression equality.
func exprEq(a, b ast.Expr) bool {
	switch x := a.(type) {
	case *ast.IntLit:
		y, ok := b.(*ast.IntLit)
		return ok && x.Value == y.Value
	case *ast.RealLit:
		y, ok := b.(*ast.RealLit)
		return ok && x.Value == y.Value
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.Unary:
		y, ok := b.(*ast.Unary)
		return ok && x.Op == y.Op && exprEq(x.X, y.X)
	case *ast.Binary:
		y, ok := b.(*ast.Binary)
		return ok && x.Op == y.Op && exprEq(x.X, y.X) && exprEq(x.Y, y.Y)
	case *ast.FuncCall:
		y, ok := b.(*ast.FuncCall)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !exprEq(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *ast.ArrayRef:
		y, ok := b.(*ast.ArrayRef)
		if !ok || x.Name != y.Name || len(x.Subs) != len(y.Subs) {
			return false
		}
		for i := range x.Subs {
			if !exprEq(x.Subs[i], y.Subs[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Pivot-broadcast lookahead

// tryLookahead pipelines a rotating-root pivot broadcast across the
// iterations of its enclosing loop — the classic LU lookahead. The
// matched shape is the §9 dgefa schedule the compiler generates:
//
//	do k = lo, hi
//	  broadcast a(..,k,..) from MOD(k+c1, s)     <- pivot column, rotating owner
//	  ...                                         <- factorization steps
//	  do j = first$(my$p+c2, k+1, s), n, s        <- trailing-matrix update
//	    <updates column j, reading columns j and k only>
//	  enddo
//	enddo
//
// The update loop's first owned iteration is j = k+1 — exactly the
// column the next iteration broadcasts. The rewrite peels that first
// iteration (a no-op reordering: first$ enumerates ascending), posts
// the next pivot broadcast immediately after it, and leaves the wait
// at the top of the loop body, so the broadcast is in flight during
// the whole remaining update loop instead of stalling every processor
// at the next iteration's head:
//
//	if (lo .LE. hi) postbcast a(..,lo,..) from MOD(lo+c1, s) tag T
//	do k = lo, hi
//	  waitbcast a tag T
//	  ...
//	  if (first$(my$p+c2, k+1, s) .EQ. k+1 .AND. k+1 .LE. n)
//	    <update column k+1>                       <- the peeled first iteration
//	  if (k .LT. hi) postbcast a(..,k+1,..) from MOD(k+1+c1, s) tag T
//	  do j = first$(my$p+c2, k+2, s), n, s        <- remaining columns
//	enddo
//
// The posted section holds its final pre-broadcast value at post time:
// the remaining update iterations touch only columns j >= k+2 and read
// columns j and k, never k+1 (checked by columnConfined), and the
// congruence check proves the broadcast root is the processor that
// owns — and has just updated — column k+1.
func (p *pass) tryLookahead(u *ast.Procedure, loop *ast.Do) []ast.Stmt {
	if loop.Step != nil && !isIntLit(loop.Step, 1) {
		return nil
	}
	body := loop.Body
	if len(body) < 2 {
		return nil
	}
	bc, ok := body[0].(*ast.Broadcast)
	if !ok {
		return nil
	}
	k := loop.Var
	// the pivot dimension selects exactly column k; every other section
	// bound must be independent of k so substituting k+1 shifts only it
	kname := map[string]bool{k: true}
	pivot := -1
	for d, sd := range bc.Sec {
		if isIdent(sd.Lo, k) && isIdent(sd.Hi, k) {
			if pivot >= 0 {
				return nil
			}
			pivot = d
		} else if exprMentions(sd.Lo, kname) || exprMentions(sd.Hi, kname) {
			return nil
		}
	}
	if pivot < 0 || !exprMentions(bc.Root, kname) {
		return nil
	}
	miss := func(reason string) []ast.Stmt {
		p.ec.Addf(explain.Missed, "sched", u.Name, bc.Pos().Line,
			"overlap-lookahead", "pivot broadcast not pipelined: %s", reason)
		return nil
	}
	jloop, ok := body[len(body)-1].(*ast.Do)
	if !ok {
		return miss("loop body does not end in an update loop")
	}
	// rotating owner: MOD(k + c1, s)
	rootCall, ok := bc.Root.(*ast.FuncCall)
	if !ok || rootCall.Name != "MOD" || len(rootCall.Args) != 2 {
		return miss("root is not a cyclic owner expression")
	}
	sLit, ok := rootCall.Args[1].(*ast.IntLit)
	if !ok || sLit.Value <= 0 {
		return miss("owner cycle length is not a constant")
	}
	s := sLit.Value
	mlin, ok := linOf(rootCall.Args[0])
	if !ok || len(mlin.coeff) != 1 || mlin.coeff[k] != 1 {
		return miss("root is not affine in the loop variable")
	}
	// update loop over owned columns: do j = first$(anchor, k+1, s), hi, s
	if !isIntLit(jloop.Step, s) {
		return miss("update loop step does not match the owner cycle")
	}
	first, ok := jloop.Lo.(*ast.FuncCall)
	if !ok || first.Name != "first$" || len(first.Args) != 3 {
		return miss("update loop does not iterate owned indices")
	}
	anchor, loExpr := first.Args[0], first.Args[1]
	if !isIntLit(first.Args[2], s) {
		return miss("update loop ownership modulus does not match the owner cycle")
	}
	llin, ok := linOf(loExpr)
	if !ok || len(llin.coeff) != 1 || llin.coeff[k] != 1 || llin.c != 1 {
		return miss("update loop does not start at the next pivot column")
	}
	// root(k+1) must be the owner of column k+1: MOD(j+c1, s) = my$p
	// iff j ≡ my$p + c2 (mod s) requires c1 + c2 ≡ 0 (mod s)
	alin, ok := linOf(anchor)
	if !ok || len(alin.coeff) != 1 || alin.coeff["my$p"] != 1 {
		return miss("update loop anchor is not the local processor")
	}
	if ((mlin.c+alin.c)%s+s)%s != 0 {
		return miss("broadcast root is not the owner of the peeled column")
	}
	jvar := jloop.Var
	if exprMentions(jloop.Hi, map[string]bool{jvar: true}) {
		return miss("update loop bound depends on its own variable")
	}
	if ok, reason := p.columnConfined(jloop.Body, bc.Array, pivot, jvar, k, nil, map[string]bool{}); !ok {
		return miss(reason)
	}
	// peeling perturbs the update variable's fall-out value when the
	// remainder loop runs zero iterations, so it must be loop-private
	if varUsedOutside(u.Body, jloop, jvar) {
		return miss(fmt.Sprintf("update variable %s is live outside the update loop", jvar))
	}

	// all proofs hold: build the pipeline
	tag := p.nextTag()
	mkPost := func(val ast.Expr) *ast.PostBcast {
		env := map[string]ast.Expr{k: val}
		sec := make([]ast.SecDim, len(bc.Sec))
		for d, sd := range bc.Sec {
			sec[d] = ast.SecDim{Lo: exprSubst(sd.Lo, env), Hi: exprSubst(sd.Hi, env)}
		}
		post := &ast.PostBcast{Array: bc.Array, Sec: sec, Root: exprSubst(bc.Root, env), Tag: tag}
		post.Position = bc.Pos()
		return post
	}
	kIdent := ast.Expr(&ast.Ident{Name: k})

	prologue := &ast.If{
		Cond: &ast.Binary{Op: ast.OpLE, X: ast.CloneExpr(loop.Lo), Y: ast.CloneExpr(loop.Hi)},
		Then: []ast.Stmt{mkPost(ast.CloneExpr(loop.Lo))},
	}
	prologue.Position = bc.Pos()

	wait := &ast.WaitBcast{Array: bc.Array, Tag: tag}
	wait.Position = bc.Pos()

	// peeled first iteration: a single-trip copy of the update loop,
	// guarded by ownership of column k+1 and the original loop range
	peelLoop := ast.CloneStmt(jloop).(*ast.Do)
	peelLoop.Lo = ast.CloneExpr(loExpr)
	peelLoop.Hi = ast.CloneExpr(loExpr)
	inRange := &ast.If{
		Cond: &ast.Binary{Op: ast.OpLE, X: ast.CloneExpr(loExpr), Y: ast.CloneExpr(jloop.Hi)},
		Then: []ast.Stmt{peelLoop},
	}
	inRange.Position = bc.Pos()
	peel := &ast.If{
		Cond: &ast.Binary{Op: ast.OpEQ, X: ast.CloneExpr(jloop.Lo), Y: ast.CloneExpr(loExpr)},
		Then: []ast.Stmt{inRange},
	}
	peel.Position = bc.Pos()

	nextPost := &ast.If{
		Cond: &ast.Binary{Op: ast.OpLT, X: ast.CloneExpr(kIdent), Y: ast.CloneExpr(loop.Hi)},
		Then: []ast.Stmt{mkPost(addConst(kIdent, 1))},
	}
	nextPost.Position = bc.Pos()

	// remainder: the update loop restarts past the peeled column
	jloop.Lo = &ast.FuncCall{Name: "first$", Args: []ast.Expr{
		ast.CloneExpr(anchor), addConst(loExpr, 1), &ast.IntLit{Value: s}}}

	newBody := []ast.Stmt{wait}
	newBody = append(newBody, body[1:len(body)-1]...)
	newBody = append(newBody, peel, nextPost, jloop)
	loop.Body = newBody
	p.applied++
	p.ec.Addf(explain.Applied, "sched", u.Name, bc.Pos().Line,
		"overlap-lookahead", "pivot broadcast pipelined across %s iterations: column %s+1 posted right after its own update, in flight during the remaining %s-loop",
		k, k, jvar)
	return []ast.Stmt{prologue}
}

// columnConfined checks that every reference to arr in body touches
// only the pivot-dimension column j (writes and reads) or column k
// (reads): the peeled-column broadcast then provably sends final
// values, and no remaining iteration observes the posted column.
// Calls are followed one level at a time through formal-to-actual
// substitution (env maps callee names to caller expressions).
func (p *pass) columnConfined(body []ast.Stmt, arr string, pivot int, jvar, kvar string, env map[string]ast.Expr, visited map[string]bool) (bool, string) {
	checkRef := func(r *ast.ArrayRef, write bool) (bool, string) {
		if len(r.Subs) <= pivot {
			return false, fmt.Sprintf("reference %s lacks the pivot dimension", r.Name)
		}
		sub := r.Subs[pivot]
		if env != nil {
			sub = exprSubst(sub, env)
		}
		l, ok := linOf(sub)
		if !ok || len(l.coeff) != 1 || l.c != 0 {
			return false, fmt.Sprintf("pivot subscript %s is not a bare column index", sub)
		}
		if l.coeff[jvar] == 1 {
			return true, ""
		}
		if !write && l.coeff[kvar] == 1 {
			return true, ""
		}
		if write {
			return false, fmt.Sprintf("update writes column %s of %s", sub, arr)
		}
		return false, fmt.Sprintf("update reads column %s of %s", sub, arr)
	}
	var checkExpr func(e ast.Expr) (bool, string)
	checkExpr = func(e ast.Expr) (bool, string) {
		switch x := e.(type) {
		case *ast.ArrayRef:
			name := x.Name
			if env != nil {
				if sub, ok := env[name].(*ast.ArrayRef); ok {
					name = sub.Name
				} else if sub, ok := env[name].(*ast.Ident); ok {
					name = sub.Name
				}
			}
			if name == arr {
				if ok, reason := checkRef(x, false); !ok {
					return false, reason
				}
			}
			for _, s := range x.Subs {
				if ok, reason := checkExpr(s); !ok {
					return false, reason
				}
			}
		case *ast.FuncCall:
			for _, a := range x.Args {
				if ok, reason := checkExpr(a); !ok {
					return false, reason
				}
			}
		case *ast.Binary:
			if ok, reason := checkExpr(x.X); !ok {
				return false, reason
			}
			return checkExpr(x.Y)
		case *ast.Unary:
			return checkExpr(x.X)
		}
		return true, ""
	}
	for _, st := range body {
		switch s := st.(type) {
		case *ast.Assign:
			if lhs, ok := s.Lhs.(*ast.ArrayRef); ok {
				name := lhs.Name
				if env != nil {
					if sub, ok := env[name].(*ast.ArrayRef); ok {
						name = sub.Name
					} else if sub, ok := env[name].(*ast.Ident); ok {
						name = sub.Name
					}
				}
				if name == arr {
					if ok, reason := checkRef(lhs, true); !ok {
						return false, reason
					}
				}
				for _, sub := range lhs.Subs {
					if ok, reason := checkExpr(sub); !ok {
						return false, reason
					}
				}
			}
			if ok, reason := checkExpr(s.Rhs); !ok {
				return false, reason
			}
		case *ast.Do:
			if ok, reason := p.columnConfined(s.Body, arr, pivot, jvar, kvar, env, visited); !ok {
				return false, reason
			}
		case *ast.Call:
			callee := p.prog.Proc(s.Name)
			if callee == nil {
				return false, fmt.Sprintf("update calls unknown procedure %s", s.Name)
			}
			if visited[callee.Name] {
				return false, fmt.Sprintf("update recurses through %s", s.Name)
			}
			visited[callee.Name] = true
			sub := map[string]ast.Expr{}
			for i, a := range s.Args {
				if i >= len(callee.Params) {
					break
				}
				actual := a
				if env != nil {
					actual = exprSubst(a, env)
				}
				sub[callee.Params[i]] = actual
			}
			if ok, reason := p.columnConfined(callee.Body, arr, pivot, jvar, kvar, sub, visited); !ok {
				return false, reason
			}
			delete(visited, callee.Name)
		default:
			return false, fmt.Sprintf("update loop contains %s", stmtLabel(st))
		}
	}
	return true, ""
}

// varUsedOutside reports whether any expression outside the given loop
// subtree mentions v.
func varUsedOutside(body []ast.Stmt, skip *ast.Do, v string) bool {
	names := map[string]bool{v: true}
	found := false
	var walkBody func([]ast.Stmt)
	walkBody = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			if found || s == ast.Stmt(skip) {
				continue
			}
			for _, e := range ast.StmtExprs(s) {
				if exprMentions(e, names) {
					found = true
					return
				}
			}
			switch st := s.(type) {
			case *ast.Do:
				walkBody(st.Body)
			case *ast.If:
				walkBody(st.Then)
				walkBody(st.Else)
			}
		}
	}
	walkBody(body)
	return found
}

// exprSubst clones e, replacing each identifier found in env with a
// clone of its mapped expression.
func exprSubst(e ast.Expr, env map[string]ast.Expr) ast.Expr {
	switch x := e.(type) {
	case *ast.Ident:
		if r, ok := env[x.Name]; ok {
			return ast.CloneExpr(r)
		}
	case *ast.Binary:
		return &ast.Binary{Op: x.Op, X: exprSubst(x.X, env), Y: exprSubst(x.Y, env)}
	case *ast.Unary:
		return &ast.Unary{Op: x.Op, X: exprSubst(x.X, env)}
	case *ast.FuncCall:
		out := &ast.FuncCall{Name: x.Name, Args: make([]ast.Expr, len(x.Args))}
		for i, a := range x.Args {
			out.Args[i] = exprSubst(a, env)
		}
		return out
	case *ast.ArrayRef:
		out := &ast.ArrayRef{Name: x.Name, Subs: make([]ast.Expr, len(x.Subs))}
		for i, s := range x.Subs {
			out.Subs[i] = exprSubst(s, env)
		}
		return out
	}
	return ast.CloneExpr(e)
}

// ---------------------------------------------------------------------------
// Small symbolic helpers

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isIntLit(e ast.Expr, v int) bool {
	l, ok := e.(*ast.IntLit)
	return ok && l.Value == v
}

// offsetFrom decomposes e as v + c for the identifier v, returning c.
func offsetFrom(e ast.Expr, v string) (int, bool) {
	l, ok := linOf(e)
	if !ok || len(l.coeff) != 1 || l.coeff[v] != 1 {
		return 0, false
	}
	return l.c, true
}

// addConst builds e + c (or e - |c|), cloning e.
func addConst(e ast.Expr, c int) ast.Expr {
	if c == 0 {
		return ast.CloneExpr(e)
	}
	if c > 0 {
		return &ast.Binary{Op: ast.OpAdd, X: ast.CloneExpr(e), Y: &ast.IntLit{Value: c}}
	}
	return &ast.Binary{Op: ast.OpSub, X: ast.CloneExpr(e), Y: &ast.IntLit{Value: -c}}
}

// lin is an affine form c + Σ coeff[v]·v over integer identifiers.
type lin struct {
	c     int
	coeff map[string]int
}

func (l lin) scaled(k int) lin {
	out := lin{c: l.c * k}
	if len(l.coeff) > 0 {
		out.coeff = make(map[string]int, len(l.coeff))
		for v, c := range l.coeff {
			out.coeff[v] = c * k
		}
	}
	return out
}

func linAdd(a, b lin, sign int) lin {
	out := lin{c: a.c + sign*b.c, coeff: map[string]int{}}
	for v, c := range a.coeff {
		out.coeff[v] += c
	}
	for v, c := range b.coeff {
		out.coeff[v] += sign * c
	}
	for v, c := range out.coeff {
		if c == 0 {
			delete(out.coeff, v)
		}
	}
	return out
}

func linOf(e ast.Expr) (lin, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return lin{c: x.Value}, true
	case *ast.Ident:
		return lin{coeff: map[string]int{x.Name: 1}}, true
	case *ast.Unary:
		if x.Op != "-" {
			return lin{}, false
		}
		l, ok := linOf(x.X)
		if !ok {
			return lin{}, false
		}
		return l.scaled(-1), true
	case *ast.Binary:
		a, okA := linOf(x.X)
		b, okB := linOf(x.Y)
		if !okA || !okB {
			return lin{}, false
		}
		switch x.Op {
		case ast.OpAdd:
			return linAdd(a, b, 1), true
		case ast.OpSub:
			return linAdd(a, b, -1), true
		case ast.OpMul:
			if len(a.coeff) == 0 {
				return b.scaled(a.c), true
			}
			if len(b.coeff) == 0 {
				return a.scaled(b.c), true
			}
		}
	}
	return lin{}, false
}

// atLeast reports whether b - a >= k is provable: the difference of
// affine forms is a constant >= k, unwrapping MIN/MAX on either side
// (x < MAX(p,q) holds if it holds against either arm; x < MIN(p,q)
// needs both, and symmetrically for the left side).
func atLeast(a, b ast.Expr, k int) bool {
	if fc, ok := b.(*ast.FuncCall); ok {
		switch fc.Name {
		case "MAX":
			for _, arg := range fc.Args {
				if atLeast(a, arg, k) {
					return true
				}
			}
			return false
		case "MIN":
			for _, arg := range fc.Args {
				if !atLeast(a, arg, k) {
					return false
				}
			}
			return len(fc.Args) > 0
		}
		return false
	}
	if fc, ok := a.(*ast.FuncCall); ok {
		switch fc.Name {
		case "MIN":
			for _, arg := range fc.Args {
				if atLeast(arg, b, k) {
					return true
				}
			}
			return false
		case "MAX":
			for _, arg := range fc.Args {
				if !atLeast(arg, b, k) {
					return false
				}
			}
			return len(fc.Args) > 0
		}
		return false
	}
	la, okA := linOf(a)
	lb, okB := linOf(b)
	if !okA || !okB {
		return false
	}
	d := linAdd(lb, la, -1)
	return len(d.coeff) == 0 && d.c >= k
}

func stmtLabel(s ast.Stmt) string {
	switch s.(type) {
	case *ast.Assign:
		return "an assignment"
	case *ast.Do:
		return "a nested loop"
	case *ast.If:
		return "control flow"
	case *ast.Call:
		return "a call"
	case *ast.Return:
		return "a return"
	case *ast.Send, *ast.Recv, *ast.Broadcast, *ast.AllGather,
		*ast.GlobalReduce, *ast.Remap,
		*ast.PostRecv, *ast.WaitRecv, *ast.PostBcast, *ast.WaitBcast:
		return "communication"
	}
	return fmt.Sprintf("%T", s)
}
