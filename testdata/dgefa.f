      PROGRAM MAIN
      PARAMETER (n$proc = 4)
      REAL a(64,64)
      DISTRIBUTE a(:,CYCLIC)
      do i = 1, 64
        do j = 1, 64
          a(i,j) = 1.0 / (i + j)
        enddo
        a(i,i) = 65.0
      enddo
      call dgefa(a, 64)
      END
      SUBROUTINE dgefa(a, n)
      REAL a(64,64)
      do k = 1, n-1
        t = 1.0 / a(k,k)
        call dscal(a, n, k, t)
        do j = k+1, n
          call daxpy(a, n, k, j)
        enddo
      enddo
      END
      SUBROUTINE dscal(a, n, k, t)
      REAL a(64,64)
      do i = k+1, n
        a(i,k) = a(i,k) * t
      enddo
      END
      SUBROUTINE daxpy(a, n, k, j)
      REAL a(64,64)
      do i = k+1, n
        a(i,j) = a(i,j) - a(i,k) * a(k,j)
      enddo
      END
