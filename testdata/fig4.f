      PROGRAM P1
      REAL X(100,100),Y(100,100)
      PARAMETER (n$proc = 4)
      ALIGN Y(i,j) with X(j,i)
      DISTRIBUTE X(BLOCK,:)
      do i = 1,100
S1      call F1(X,i)
      enddo
      do j = 1,100
S2      call F1(Y,j)
      enddo
      END
      SUBROUTINE F1(Z,i)
      REAL Z(100,100)
S3    call F2(Z,i)
      END
      SUBROUTINE F2(Z,i)
      REAL Z(100,100)
      do k = 1,95
        Z(k,i) = F(Z(k+5,i))
      enddo
      END
