      PROGRAM MISMATCH
      PARAMETER (n$proc = 2)
      REAL a(8)
      my$p = myproc()
      if (my$p .EQ. 0) then
        recv a(1:4) from 1
      endif
      if (my$p .EQ. 1) then
        recv a(5:8) from 0
      endif
      END
