      PROGRAM P1
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      call F1(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      do i = 1,95
        X(i) = F(X(i+5))
      enddo
      END
