      PROGRAM RED
      PARAMETER (n$proc = 4)
      REAL X(128)
      DISTRIBUTE X(CYCLIC)
      do i = 1, 128
        X(i) = MOD(i * 7, 13)
      enddo
      s = 0.0
      do i = 1, 128
        s = s + X(i)
      enddo
      emax = 0.0
      do i = 1, 128
        emax = MAX(emax, X(i))
      enddo
      X(1) = s
      X(2) = emax
      END
