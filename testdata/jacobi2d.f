      PROGRAM JAC2
      PARAMETER (n$proc = 4)
      REAL a(32,32), b(32,32)
      DISTRIBUTE a(BLOCK,:)
      DISTRIBUTE b(BLOCK,:)
      do j = 1, 32
        a(1,j) = 100.0
        a(32,j) = 100.0
      enddo
      do t = 1, 8
        do i = 2, 31
          do j = 2, 31
            b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))
          enddo
        enddo
        do i = 2, 31
          do j = 2, 31
            a(i,j) = b(i,j)
          enddo
        enddo
      enddo
      END
