      PROGRAM P1
      REAL X(100)
      PARAMETER (n$proc = 4)
      DISTRIBUTE X(BLOCK)
      do k = 1,10
S1      call F1(X)
S2      call F1(X)
      enddo
      call F2(X)
      END
      SUBROUTINE F1(X)
      REAL X(100)
      DISTRIBUTE X(CYCLIC)
      do i = 1,100
        y = y + X(i)
      enddo
      END
      SUBROUTINE F2(X)
      REAL X(100)
      do i = 1,100
        X(i) = 1.0
      enddo
      END
