package fortd

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fortd/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRunTrace compiles src, runs it with a trace attached to the
// run only (compile phases use wall-clock time and would make the
// output nondeterministic), and compares the text summary against the
// golden file.
func goldenRunTrace(t *testing.T, name, src string, init map[string][]float64) {
	t.Helper()
	prog, err := Compile(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	if _, err := NewRunner(WithInit(init), WithTrace(tr)).Run(prog); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update` to create)", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("trace summary differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGoldenTraceJacobi(t *testing.T) {
	goldenRunTrace(t, "jacobi_trace", Jacobi2DSrc(16, 3, 4),
		map[string][]float64{"a": Ramp(16 * 16)})
}

func TestGoldenTraceDgefa(t *testing.T) {
	goldenRunTrace(t, "dgefa_trace", DgefaSrc(32, 4),
		map[string][]float64{"a": DgefaMatrix(32)})
}

// TestTraceWordsMatchStats checks the headline acceptance criterion:
// the per-message word totals in the trace sum exactly to Stats.Words,
// on a stencil workload, a remap-heavy workload, and dgefa.
func TestTraceWordsMatchStats(t *testing.T) {
	cases := []struct {
		name string
		src  string
		init map[string][]float64
	}{
		{"jacobi", Jacobi2DSrc(16, 3, 4), map[string][]float64{"a": Ramp(16 * 16)}},
		{"adi-dynamic", ADISrc(16, 2, 4, true), map[string][]float64{"a": Ramp(16 * 16)}},
		{"dgefa", DgefaSrc(32, 4), map[string][]float64{"a": DgefaMatrix(32)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Compile(tc.src, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			tr := NewTrace()
			res, err := NewRunner(WithInit(tc.init), WithTrace(tr)).Run(prog)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Words == 0 {
				t.Fatal("workload moved no words")
			}
			if got := trace.MessageWords(tr.Events()); got != res.Stats.Words {
				t.Errorf("trace words = %d, Stats.Words = %d", got, res.Stats.Words)
			}
			// message events must also match the message count
			var msgs int64
			for _, ev := range tr.Events() {
				switch ev.Kind {
				case trace.KindSend:
					msgs++
				case trace.KindRemap:
					msgs += ev.Value
				}
			}
			if msgs != res.Stats.Messages {
				t.Errorf("trace messages = %d, Stats.Messages = %d", msgs, res.Stats.Messages)
			}
		})
	}
}

// TestTraceAttribution checks that at least 95% of traced messages
// carry the source procedure that placed the communication.
func TestTraceAttribution(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		init map[string][]float64
	}{
		{"jacobi", Jacobi2DSrc(16, 3, 4), map[string][]float64{"a": Ramp(16 * 16)}},
		{"dgefa", DgefaSrc(32, 4), map[string][]float64{"a": DgefaMatrix(32)}},
		{"fig4", Fig4Src(20, 4), map[string][]float64{"X": Ramp(400), "Y": Ramp(400)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Compile(tc.src, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			tr := NewTrace()
			if _, err := NewRunner(WithInit(tc.init), WithTrace(tr)).Run(prog); err != nil {
				t.Fatal(err)
			}
			var total, attributed int64
			for _, ev := range tr.Events() {
				if ev.Kind != trace.KindSend && ev.Kind != trace.KindRemap {
					continue
				}
				w := int64(1)
				if ev.Kind == trace.KindRemap {
					w = ev.Value
				}
				total += w
				if ev.Proc != "" {
					attributed += w
				}
			}
			if total == 0 {
				t.Fatal("no messages traced")
			}
			if pct := 100 * float64(attributed) / float64(total); pct < 95 {
				t.Errorf("attribution = %.1f%% (%d/%d), want >= 95%%", pct, attributed, total)
			}
		})
	}
}

// TestTraceChromeEndToEnd checks the exporter on a real run: valid
// JSON, monotone timestamps per (pid, tid), and exact word totals.
func TestTraceChromeEndToEnd(t *testing.T) {
	prog, err := Compile(Jacobi2DSrc(16, 3, 4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	res, err := NewRunner(WithInit(map[string][]float64{"a": Ramp(16 * 16)}), WithTrace(tr)).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			Args struct {
				Words int `json:"words"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	last := map[[2]int]float64{}
	var words int64
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		k := [2]int{ev.PID, ev.TID}
		if prev, ok := last[k]; ok && ev.TS < prev {
			t.Fatalf("non-monotone ts on pid=%d tid=%d", ev.PID, ev.TID)
		}
		last[k] = ev.TS
		if ev.Ph == "X" && ev.PID == 1 && !strings.HasPrefix(ev.Name, "wait ") {
			words += int64(ev.Args.Words)
		}
	}
	if words != res.Stats.Words {
		t.Errorf("chrome word sum = %d, Stats.Words = %d", words, res.Stats.Words)
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"negative P", func(o *Options) { o.P = -2 }, "Options.P"},
		{"unknown strategy", func(o *Options) { o.Strategy = 99 }, "Strategy"},
		{"unknown remap level", func(o *Options) { o.RemapOpt = -1 }, "RemapOpt"},
		{"negative clone limit", func(o *Options) { o.CloneLimit = -1 }, "CloneLimit"},
		{"negative jobs", func(o *Options) { o.Jobs = -4 }, "Options.Jobs"},
		{"negative deadline", func(o *Options) { o.Deadline = -time.Second }, "Options.Deadline"},
		{"cache dir and cache", func(o *Options) { o.CacheDir = "/tmp/x"; o.Cache = NewSummaryCache() }, "mutually exclusive"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			o := DefaultOptions()
			tc.mut(&o)
			err := o.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error mentioning %q", err, tc.want)
			}
			// Compile must reject it too, not silently default
			if _, err := Compile(Fig1Src(100, 4), o); err == nil {
				t.Error("Compile accepted invalid options")
			}
		})
	}
}

// TestRunSPMDBadDistribute checks that a DISTRIBUTE whose descriptor
// cannot be built is a loud compile-time error rather than a silently
// dropped distribution.
func TestRunSPMDBadDistribute(t *testing.T) {
	// rank mismatch: 2-D array, 1-D distribution spec
	src := `
      PROGRAM MAIN
      REAL A(8,8)
      DISTRIBUTE A(BLOCK)
      do i = 1,8
        A(i,1) = 1.0
      enddo
      END
`
	_, err := NewRunner().RunSPMD(src, 4)
	if err == nil || !strings.Contains(err.Error(), "DISTRIBUTE A") {
		t.Errorf("RunSPMD = %v, want DISTRIBUTE A error", err)
	}

	// non-constant dimension bound
	src2 := `
      PROGRAM MAIN
      REAL A(n)
      DISTRIBUTE A(BLOCK)
      END
`
	_, err = NewRunner().RunSPMD(src2, 4)
	if err == nil || !strings.Contains(err.Error(), "not compile-time constants") {
		t.Errorf("RunSPMD = %v, want non-constant bounds error", err)
	}
}

// TestRunnerMatchesLegacyRun checks that the functional-options Runner
// and the legacy RunOptions wrappers produce identical results.
func TestRunnerMatchesLegacyRun(t *testing.T) {
	prog, err := Compile(Fig1Src(100, 4), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	init := map[string][]float64{"X": Ramp(100)}
	legacy, err := prog.Run(RunOptions{Init: init})
	if err != nil {
		t.Fatal(err)
	}
	viaRunner, err := NewRunner(WithInit(init)).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Stats.String() != viaRunner.Stats.String() {
		t.Errorf("runner stats %v != legacy stats %v", viaRunner.Stats, legacy.Stats)
	}
	for name, want := range legacy.Arrays {
		got := viaRunner.Arrays[name]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
	}
	// a reused Runner gives the same answer again
	again, err := NewRunner(WithInit(init)).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if again.Stats.Time != viaRunner.Stats.Time || again.Stats.Words != viaRunner.Stats.Words {
		t.Errorf("rerun stats differ: %v vs %v", again.Stats, viaRunner.Stats)
	}
}
