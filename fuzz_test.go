package fortd

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzCompile asserts the whole compile pipeline — parse, ACG
// construction, interprocedural analyses, code generation — never
// panics: arbitrary input must either compile or return an error. Each
// input is compiled twice, sequentially and through the parallel
// scheduler with a summary cache attached, so the fuzzer also exercises
// the worker pool and the cache load/store paths.
func FuzzCompile(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("testdata", "*.f"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	for _, src := range []string{
		Fig1Src(100, 4),
		Fig4Src(100, 4),
		Fig15Src(25, 4),
		DgefaSrc(16, 4),
		Jacobi1DSrc(64, 4, 4),
		Jacobi2DSrc(16, 2, 4),
		ADISrc(16, 2, 4, true),
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		opts := DefaultOptions()
		seq, seqErr := Compile(src, opts)

		opts.Jobs = 4
		opts.Cache = NewSummaryCache()
		par, parErr := Compile(src, opts)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("sequential error %v vs parallel error %v", seqErr, parErr)
		}
		if seqErr == nil && seq.Listing() != par.Listing() {
			t.Fatal("sequential and parallel listings differ")
		}
		// warm recompile through the same cache must be error-free and
		// byte-identical when the cold compile succeeded
		if parErr == nil {
			warm, warmErr := Compile(src, opts)
			if warmErr != nil {
				t.Fatalf("warm recompile failed: %v", warmErr)
			}
			if warm.Listing() != par.Listing() {
				t.Fatal("warm recompile listing differs")
			}
		}
	})
}
