package fortd

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fortd/internal/trace/analyze"
)

// tracedRun compiles src and runs it with a fresh tracer attached to
// the run only, returning the tracer.
func tracedRun(t *testing.T, src string, init map[string][]float64) *Trace {
	t.Helper()
	prog, err := Compile(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	if _, err := NewRunner(WithInit(init), WithTrace(tr)).Run(prog); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestGoldenAnalyzeDgefa pins the analyze layer's text rendering — the
// P×P traffic matrix and the hotspot table — for the §9 dgefa case
// study at P=4. The run is virtual-time deterministic, so any diff is
// a real behavior change in the simulator or the analytics.
func TestGoldenAnalyzeDgefa(t *testing.T) {
	tr := tracedRun(t, DgefaSrc(32, 4), map[string][]float64{"a": DgefaMatrix(32)})
	a := analyze.Analyze(tr.Events())
	if a == nil {
		t.Fatal("Analyze returned nil for a traced run")
	}
	var buf bytes.Buffer
	if err := a.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "dgefa_analyze.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGoldenAnalyze -update` to create)", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("analysis differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestStatsConservation checks message conservation on real workloads:
// every point-to-point message sent is eventually consumed by a Recv
// (remap partner messages are collective and excluded via RemapMsgs),
// and the machine-wide Received aggregate matches the per-processor
// sum.
func TestStatsConservation(t *testing.T) {
	cases := []struct {
		name string
		src  string
		init map[string][]float64
	}{
		{"jacobi", Jacobi2DSrc(16, 3, 4), map[string][]float64{"a": Ramp(16 * 16)}},
		{"dgefa", DgefaSrc(32, 4), map[string][]float64{"a": DgefaMatrix(32)}},
		{"dyndist", Fig15Src(5, 4), map[string][]float64{"X": Ramp(100)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Compile(tc.src, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			res, err := NewRunner(WithInit(tc.init)).Run(prog)
			if err != nil {
				t.Fatal(err)
			}
			s := res.Stats
			var sent, remap, recvd int64
			for _, p := range s.PerProc {
				sent += p.Sent
				remap += p.RemapMsgs
				recvd += p.Received
			}
			if sent-remap != recvd {
				t.Errorf("conservation: sum(Sent)-sum(RemapMsgs) = %d, sum(Received) = %d", sent-remap, recvd)
			}
			if s.Received != recvd {
				t.Errorf("Stats.Received = %d, per-proc sum = %d", s.Received, recvd)
			}
			// the pair matrix rows must re-add to each sender's totals
			for src, row := range s.Traffic {
				var msgs, words int64
				for _, cell := range row {
					msgs += cell.Msgs
					words += cell.Words
				}
				if msgs != s.PerProc[src].Sent || words != s.PerProc[src].Words {
					t.Errorf("proc %d: traffic row sums (%d msgs, %d words) != proc totals (%d, %d)",
						src, msgs, words, s.PerProc[src].Sent, s.PerProc[src].Words)
				}
			}
		})
	}
}

// TestDeterministicExport runs the same traced dgefa program twice and
// requires byte-identical text and JSONL exports: event append order
// varies with goroutine scheduling, so the exporters must sort by
// virtual time before rendering.
func TestDeterministicExport(t *testing.T) {
	render := func() (string, string) {
		tr := tracedRun(t, DgefaSrc(32, 4), map[string][]float64{"a": DgefaMatrix(32)})
		var text, jsonl bytes.Buffer
		if err := tr.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSONL(&jsonl); err != nil {
			t.Fatal(err)
		}
		return text.String(), jsonl.String()
	}
	text1, jsonl1 := render()
	text2, jsonl2 := render()
	if text1 != text2 {
		t.Error("two identical runs produced different WriteText output")
	}
	if jsonl1 != jsonl2 {
		t.Error("two identical runs produced different WriteJSONL output")
	}
	if !strings.Contains(jsonl1, `"kind":"send"`) {
		t.Error("JSONL export has no send events")
	}
}
