package fortd

// Service is the compile-as-a-service engine: the production analogue
// of ParaScope's program database. One process-wide Service owns the
// shared summary cache (optionally disk-persisted, so restarts and
// parallel servers stay warm), a bounded worker pool, and per-session
// token-bucket rate limits; cmd/fdd exposes it over HTTP/JSON. All
// methods are safe for concurrent use — that is the point.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"fortd/internal/metrics"
	"fortd/internal/profile"
	"fortd/internal/summarycache"
)

// Typed service errors. The HTTP layer maps these onto status codes
// (429, 503, 404); library callers test them with errors.Is.
var (
	// ErrRateLimited reports that the request's session exhausted its
	// token bucket. Retry after ~1/RateLimit seconds.
	ErrRateLimited = errors.New("fortd: session rate limit exceeded")
	// ErrOverloaded reports that the service's queue is full: every
	// worker is busy and QueueDepth requests are already waiting.
	ErrOverloaded = errors.New("fortd: service overloaded, queue full")
	// ErrServiceClosed reports a request against a closed Service.
	ErrServiceClosed = errors.New("fortd: service closed")
	// ErrUnknownProgram reports a run or report request naming a
	// program id the service has not compiled (or has since evicted).
	ErrUnknownProgram = errors.New("fortd: unknown program id")
	// ErrUnknownProfile reports a profile id the service's store does
	// not hold.
	ErrUnknownProfile = errors.New("fortd: unknown profile id")
)

// RateLimitError is the concrete error behind ErrRateLimited
// (errors.Is(err, ErrRateLimited) matches it): it carries how long
// the session's token bucket needs to refill one token, so transports
// can emit an honest Retry-After.
type RateLimitError struct {
	// Session is the throttled session id.
	Session string
	// RetryAfter is the refill time until the bucket holds one token.
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("fortd: session %q rate limit exceeded, retry in %v", e.Session, e.RetryAfter.Round(time.Millisecond))
}

// Is reports ErrRateLimited as this error's sentinel.
func (e *RateLimitError) Is(target error) bool { return target == ErrRateLimited }

// RequestError annotates a Service failure with the request id the
// calling transport stored in the context via WithRequestID, so one
// id ties a client's error report to the daemon's logs and traces.
type RequestError struct {
	// ID is the request id the failure occurred under.
	ID string
	// Err is the underlying failure; errors.Is/As see through it.
	Err error
}

func (e *RequestError) Error() string { return "request " + e.ID + ": " + e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is and errors.As.
func (e *RequestError) Unwrap() error { return e.Err }

// requestIDKey keys the request id in a context.
type requestIDKey struct{}

// WithRequestID returns a context carrying a request id. Service
// methods wrap their failures in a *RequestError naming it.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request id stored by WithRequestID ("" if
// none).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// tagRequest wraps err with the context's request id, if any.
func tagRequest(ctx context.Context, err error) error {
	if err == nil {
		return nil
	}
	if id := RequestIDFrom(ctx); id != "" {
		return &RequestError{ID: id, Err: err}
	}
	return err
}

// ServiceConfig configures a Service.
type ServiceConfig struct {
	// Options is the base compilation configuration; per-request
	// options override it field by field at the transport layer. Its
	// Cache and CacheDir must be unset — the Service owns the cache
	// (set ServiceConfig.CacheDir for the disk tier) — and its Trace
	// and Explain must be nil (observability is per-request).
	Options Options
	// CacheDir, when non-empty, backs the shared summary cache with
	// entry files under this directory (see NewDiskSummaryCache), so a
	// restarted or parallel server serves previously-compiled
	// procedures as disk hits with no phase-3 re-analysis.
	CacheDir string
	// Workers bounds the number of concurrently executing compile/run
	// requests (0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many requests may wait for a worker slot
	// beyond the ones executing (0: 4×Workers). Requests beyond the
	// bound fail fast with ErrOverloaded instead of piling up.
	QueueDepth int
	// RateLimit is each session's sustained request budget in requests
	// per second (0: unlimited).
	RateLimit float64
	// RateBurst is each session's token-bucket capacity — how many
	// requests may arrive back to back before the sustained rate
	// applies (0: 2×ceil(RateLimit), at least 1). Requires RateLimit.
	RateBurst int
	// ProfileDir, when non-empty, persists profile artifacts collected
	// by RunRequest.Profile as content-hash-keyed files under this
	// directory, so a restarted daemon keeps serving its accumulated
	// profile corpus. Empty keeps profiles in memory only.
	ProfileDir string
	// RunDeadline bounds each simulated run's wall-clock time (0:
	// none); the machine's deadlock watchdog runs regardless.
	RunDeadline time.Duration
	// MaxPrograms bounds the compiled-program table serving run-by-id
	// and /report/{id}; the least recently used entry is evicted (0:
	// 256).
	MaxPrograms int
	// Metrics, when non-nil, receives the service's live telemetry:
	// compile/run outcomes and latency histograms, rate-limit and
	// overload rejections, worker-pool queue depth and saturation, and
	// summary-cache hit/miss counters split by memory vs disk tier. A
	// nil registry disables recording at the cost of a nil check
	// (pinned by BenchmarkMetricsDisabled in internal/metrics).
	Metrics *metrics.Registry
}

// Validate reports the first invalid field or combination.
func (c ServiceConfig) Validate() error {
	if err := c.Options.Validate(); err != nil {
		return err
	}
	if c.Options.Cache != nil || c.Options.CacheDir != "" {
		return fmt.Errorf("fortd: ServiceConfig.Options must not carry a cache; the Service owns it (set ServiceConfig.CacheDir for the disk tier)")
	}
	if c.Options.Trace != nil || c.Options.Explain != nil {
		return fmt.Errorf("fortd: ServiceConfig.Options must not carry a Trace or Explain; observability is per-request")
	}
	if c.Workers < 0 {
		return fmt.Errorf("fortd: ServiceConfig.Workers = %d, must be >= 0 (0 uses GOMAXPROCS)", c.Workers)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("fortd: ServiceConfig.QueueDepth = %d, must be >= 0 (0 uses 4x workers)", c.QueueDepth)
	}
	if c.RateLimit < 0 {
		return fmt.Errorf("fortd: ServiceConfig.RateLimit = %g, must be >= 0 (0 disables rate limiting)", c.RateLimit)
	}
	if c.RateBurst < 0 {
		return fmt.Errorf("fortd: ServiceConfig.RateBurst = %d, must be >= 0", c.RateBurst)
	}
	if c.RateBurst > 0 && c.RateLimit == 0 {
		return fmt.Errorf("fortd: ServiceConfig.RateBurst = %d without RateLimit; a burst needs a sustained rate to refill from", c.RateBurst)
	}
	if c.RunDeadline < 0 {
		return fmt.Errorf("fortd: ServiceConfig.RunDeadline = %v, must be >= 0 (0 disables it)", c.RunDeadline)
	}
	if c.MaxPrograms < 0 {
		return fmt.Errorf("fortd: ServiceConfig.MaxPrograms = %d, must be >= 0 (0 uses 256)", c.MaxPrograms)
	}
	return nil
}

// ServiceStats is a point-in-time view of a Service's counters,
// exposed by the daemon's /stats endpoint.
type ServiceStats struct {
	Compiles    int64 `json:"compiles"`
	Runs        int64 `json:"runs"`
	Failures    int64 `json:"failures"`
	RateLimited int64 `json:"rateLimited"`
	Rejected    int64 `json:"rejected"` // queue-full fast failures
	InFlight    int   `json:"inFlight"`
	Queued      int   `json:"queued"`
	Workers     int   `json:"workers"`
	QueueDepth  int   `json:"queueDepth"`
	Sessions    int   `json:"sessions"` // sessions with a live token bucket
	Programs    int   `json:"programs"` // compiled programs held for run/report by id
	// Cache is for Go consumers; the daemon's /stats endpoint serves
	// it as a separate top-level object (with hitRate), so it is
	// excluded here to keep the wire format free of duplicates.
	Cache CacheStats `json:"-"`
}

// program is one retained compilation, addressable by content hash.
type program struct {
	id      string
	src     string
	opts    Options
	prog    *Program
	listing string
	lastUse int64 // monotonic use sequence, for LRU eviction
}

// bucket is one session's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// serviceMetrics holds the service's instruments. With no registry
// configured every field is nil and each record site is a no-op.
type serviceMetrics struct {
	compiles   *metrics.CounterVec // outcome: ok | canceled | deadline | error
	runs       *metrics.CounterVec // outcome
	rejected   *metrics.CounterVec // reason: rate-limit | overload | closed
	compileSec *metrics.Histogram
	runSec     *metrics.Histogram
	// blockedShare observes each profiled run's machine-wide blocked
	// fraction; profilesStored counts artifacts written to the profile
	// store. Exactly one histogram observation per stored profile, so
	// fdd_run_blocked_share_count == fdd_profiles_stored_total is a
	// scrape-time accounting identity (checked by fdload -scrape).
	blockedShare   *metrics.Histogram
	profilesStored *metrics.Counter
}

// outcomeLabel maps a request error onto its counter label.
func outcomeLabel(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.Canceled):
		return "canceled"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	default:
		return "error"
	}
}

// register creates the service's metric families on reg and wires the
// sampled gauges (pool, sessions, programs) and cache-tier counters
// to s; sampled series read live state at scrape time, so /metrics
// and Stats() can never drift apart.
func (m *serviceMetrics) register(reg *metrics.Registry, s *Service) {
	if reg == nil {
		return
	}
	m.compiles = reg.CounterVec("fdd_compiles_total", "Compile requests by outcome.", "outcome")
	m.runs = reg.CounterVec("fdd_runs_total", "Run requests by outcome.", "outcome")
	m.rejected = reg.CounterVec("fdd_rejected_total", "Requests rejected before acquiring a worker, by reason.", "reason")
	m.compileSec = reg.Histogram("fdd_compile_seconds", "Compile latency including queue wait.", nil)
	m.runSec = reg.Histogram("fdd_run_seconds", "Run latency including queue wait.", nil)
	m.blockedShare = reg.Histogram("fdd_run_blocked_share", "Machine-wide blocked fraction of profiled runs (one observation per stored profile).",
		[]float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1})
	m.profilesStored = reg.Counter("fdd_profiles_stored_total", "Profile artifacts stored by RunRequest.Profile.")
	locked := func(f func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return f()
		}
	}
	reg.GaugeFunc("fdd_queue_depth", "Requests waiting for a worker slot.",
		locked(func() float64 { return float64(s.queued) }))
	reg.GaugeFunc("fdd_queue_limit", "Maximum requests allowed to wait (QueueDepth).",
		func() float64 { return float64(s.depth) })
	reg.GaugeFunc("fdd_pool_inflight", "Requests currently executing.",
		locked(func() float64 { return float64(s.inflight) }))
	reg.GaugeFunc("fdd_pool_workers", "Worker-pool size.",
		func() float64 { return float64(s.workers) })
	reg.GaugeFunc("fdd_pool_saturation", "Executing requests over pool size (1 = every worker busy).",
		locked(func() float64 { return float64(s.inflight) / float64(s.workers) }))
	reg.GaugeFunc("fdd_sessions", "Sessions holding a live token bucket.",
		locked(func() float64 { return float64(len(s.sessions)) }))
	reg.GaugeFunc("fdd_programs", "Compiled programs retained for run/report by id.",
		locked(func() float64 { return float64(len(s.programs)) }))
	reg.CounterFunc("fdd_cache_hits_total", "Summary-cache hits by tier (memory: in-process table, disk: entry file load).",
		func() float64 { st := s.cache.Stats(); return float64(st.Hits - st.DiskHits) }, "tier", "memory")
	reg.CounterFunc("fdd_cache_hits_total", "Summary-cache hits by tier (memory: in-process table, disk: entry file load).",
		func() float64 { return float64(s.cache.Stats().DiskHits) }, "tier", "disk")
	reg.CounterFunc("fdd_cache_misses_total", "Summary-cache misses (procedure analyzed from scratch).",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.GaugeFunc("fdd_cache_entries", "Summary-cache entries by tier.",
		func() float64 { return float64(s.cache.Stats().Entries) }, "tier", "memory")
	reg.GaugeFunc("fdd_cache_entries", "Summary-cache entries by tier.",
		func() float64 { return float64(s.cache.Stats().DiskEntries) }, "tier", "disk")
}

// Service serves compilations and simulated runs for many concurrent
// sessions from one process. Create with NewService; a Service must
// not be copied.
type Service struct {
	cfg      ServiceConfig
	cache    *SummaryCache
	profiles profile.Store
	workers  int
	depth    int
	burst    float64
	met      serviceMetrics

	slots chan struct{}

	mu          sync.Mutex
	closed      bool
	queued      int
	inflight    int
	sessions    map[string]*bucket
	programs    map[string]*program
	useSeq      int64
	compiles    int64
	runs        int64
	failures    int64
	rateLimited int64
	rejected    int64
}

// NewService validates cfg and builds a Service. The shared summary
// cache is created here: memory-only, or disk-backed when cfg.CacheDir
// is set.
func NewService(cfg ServiceConfig) (*Service, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cache := NewSummaryCache()
	if cfg.CacheDir != "" {
		var err error
		if cache, err = NewDiskSummaryCache(cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	var profiles profile.Store = profile.NewMemStore()
	if cfg.ProfileDir != "" {
		var err error
		if profiles, err = profile.NewDirStore(cfg.ProfileDir); err != nil {
			return nil, err
		}
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = 4 * workers
	}
	burst := float64(cfg.RateBurst)
	if burst == 0 && cfg.RateLimit > 0 {
		burst = 2 * float64(int(cfg.RateLimit+0.999))
		if burst < 1 {
			burst = 1
		}
	}
	s := &Service{
		cfg: cfg, cache: cache, profiles: profiles,
		workers: workers, depth: depth, burst: burst,
		slots:    make(chan struct{}, workers),
		sessions: map[string]*bucket{},
		programs: map[string]*program{},
	}
	s.met.register(cfg.Metrics, s)
	return s, nil
}

// Cache returns the service's shared summary cache.
func (s *Service) Cache() *SummaryCache { return s.cache }

// Close marks the service closed: subsequent requests fail with
// ErrServiceClosed; requests already executing finish normally.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// Stats returns the current counters.
func (s *Service) Stats() ServiceStats {
	s.mu.Lock()
	st := ServiceStats{
		Compiles: s.compiles, Runs: s.runs, Failures: s.failures,
		RateLimited: s.rateLimited, Rejected: s.rejected,
		InFlight: s.inflight, Queued: s.queued,
		Workers: s.workers, QueueDepth: s.depth,
		Sessions: len(s.sessions), Programs: len(s.programs),
	}
	s.mu.Unlock()
	st.Cache = s.cache.Stats()
	return st
}

// sessionIdleTimeout is how long an unused token bucket survives; the
// map is pruned opportunistically so millions of one-shot sessions
// cannot grow it without bound.
const sessionIdleTimeout = 5 * time.Minute

// admit performs the per-session rate-limit check at time now.
func (s *Service) admit(session string, now time.Time) error {
	if s.cfg.RateLimit <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.sessions[session]
	if b == nil {
		if len(s.sessions) >= 8192 {
			for k, ob := range s.sessions {
				if now.Sub(ob.last) > sessionIdleTimeout {
					delete(s.sessions, k)
				}
			}
		}
		b = &bucket{tokens: s.burst}
		s.sessions[session] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * s.cfg.RateLimit
		if b.tokens > s.burst {
			b.tokens = s.burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		s.rateLimited++
		s.met.rejected.With("rate-limit").Inc()
		return &RateLimitError{
			Session:    session,
			RetryAfter: time.Duration((1 - b.tokens) / s.cfg.RateLimit * float64(time.Second)),
		}
	}
	b.tokens--
	return nil
}

// acquire admits the request through the rate limiter, then waits for
// a worker slot (bounded by QueueDepth). The caller must release()
// after a nil return.
func (s *Service) acquire(ctx context.Context, session string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.met.rejected.With("closed").Inc()
		return ErrServiceClosed
	}
	s.mu.Unlock()
	if err := s.admit(session, time.Now()); err != nil {
		return err
	}
	s.mu.Lock()
	if s.queued >= s.depth {
		s.rejected++
		s.mu.Unlock()
		s.met.rejected.With("overload").Inc()
		return ErrOverloaded
	}
	s.queued++
	s.mu.Unlock()
	select {
	case s.slots <- struct{}{}:
		s.mu.Lock()
		s.queued--
		s.inflight++
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		// counted as a rejection so every request lands in exactly one
		// counter: an outcome, or a rejection reason
		s.met.rejected.With("canceled").Inc()
		return ctx.Err()
	}
}

func (s *Service) release() {
	<-s.slots
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

// ProgramID is the content hash a compilation is addressable under:
// it covers the source text and every option that influences the
// generated code, so byte-identical listings map one-to-one onto ids.
// (Jobs is excluded — the parallel scheduler's output is byte-identical
// for any worker count.)
func ProgramID(src string, opts Options) string {
	return summarycache.Hash(
		"src", src,
		"p", fmt.Sprint(opts.P),
		"strategy", fmt.Sprint(int(opts.Strategy)),
		"remap", fmt.Sprint(int(opts.RemapOpt)),
		"clone", fmt.Sprint(opts.CloneLimit),
		"overlap", fmt.Sprint(opts.Overlap),
	)
}

// CompileRequest is one session's compile call.
type CompileRequest struct {
	// Session identifies the requesting session for rate limiting
	// ("" is a valid shared session).
	Session string
	// Source is the Fortran D program text.
	Source string
	// Options configures the compilation. Cache, CacheDir, Trace and
	// Explain must be unset: the service attaches its shared cache and
	// per-request collectors itself.
	Options Options
	// Explain requests optimization remarks in the result.
	Explain bool
}

// CompileResult is a compile call's outcome.
type CompileResult struct {
	// ID addresses this compilation in later Run and Report calls.
	ID string
	// Program is the compiled program (shared, immutable).
	Program *Program
	// Listing is the generated SPMD node program.
	Listing string
	// Report carries the code-generation counters.
	Report Report
	// CacheHits and CacheMisses list the procedures served from /
	// stored into the shared summary cache.
	CacheHits, CacheMisses []string
	// Remarks holds the optimization remarks (when requested).
	Remarks []Remark
}

// Compile compiles source text through the shared summary cache and
// retains the program for run-by-id and report-by-id. Concurrent
// compilations of the same content hash are allowed (both execute;
// the summary cache deduplicates the per-procedure work).
func (s *Service) Compile(ctx context.Context, req CompileRequest) (*CompileResult, error) {
	start := time.Now()
	if err := s.acquire(ctx, req.Session); err != nil {
		return nil, tagRequest(ctx, err)
	}
	defer s.release()
	res, err := s.compileLocked(ctx, req)
	if err != nil {
		s.mu.Lock()
		s.failures++
		s.mu.Unlock()
	}
	s.met.compiles.With(outcomeLabel(err)).Inc()
	s.met.compileSec.Observe(time.Since(start).Seconds())
	return res, tagRequest(ctx, err)
}

// compileLocked does the compile work inside an acquired worker slot
// (it also serves Run requests that carry inline source, so the
// compile counter lives here).
func (s *Service) compileLocked(ctx context.Context, req CompileRequest) (*CompileResult, error) {
	s.mu.Lock()
	s.compiles++
	s.mu.Unlock()
	opts := req.Options
	if opts.Cache != nil || opts.CacheDir != "" || opts.Trace != nil || opts.Explain != nil {
		return nil, fmt.Errorf("fortd: CompileRequest.Options must not carry a cache, trace or explain; the service owns them")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts.Cache = s.cache
	if opts.Deadline == 0 {
		opts.Deadline = s.cfg.Options.Deadline
	}
	// Like Deadline, a request that does not ask for overlap inherits
	// the service-wide default (fdd -overlap); an explicit
	// Options.Overlap = true always wins.
	if !opts.Overlap {
		opts.Overlap = s.cfg.Options.Overlap
	}
	var ex *Explain
	if req.Explain {
		ex = NewExplain()
		opts.Explain = ex
	}
	prog, err := CompileContext(ctx, req.Source, opts)
	if err != nil {
		return nil, err
	}
	// The id and retained options reflect the effective compile (after
	// Deadline/Overlap inheritance), so an explicit-overlap request and
	// one inheriting a default-on service map to the same program id.
	eff := req.Options
	eff.Overlap = opts.Overlap
	res := &CompileResult{
		ID:      ProgramID(req.Source, eff),
		Program: prog,
		Listing: prog.Listing(),
		Report:  prog.Report(),
	}
	res.CacheHits = append(res.CacheHits, prog.CacheHits()...)
	res.CacheMisses = append(res.CacheMisses, prog.CacheMisses()...)
	if ex != nil {
		res.Remarks = ex.Remarks()
	}
	s.retain(&program{
		id: res.ID, src: req.Source, opts: eff,
		prog: prog, listing: res.Listing,
	})
	return res, nil
}

// retain stores p in the program table, evicting the least recently
// used entry past the cap.
func (s *Service) retain(p *program) {
	max := s.cfg.MaxPrograms
	if max == 0 {
		max = 256
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.useSeq++
	p.lastUse = s.useSeq
	s.programs[p.id] = p
	for len(s.programs) > max {
		var lru *program
		for _, q := range s.programs {
			if lru == nil || q.lastUse < lru.lastUse {
				lru = q
			}
		}
		delete(s.programs, lru.id)
	}
}

// lookup returns the retained program for id, refreshing its LRU slot.
func (s *Service) lookup(id string) (*program, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.programs[id]
	if p == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProgram, id)
	}
	s.useSeq++
	p.lastUse = s.useSeq
	return p, nil
}

// RunRequest is one session's run call: it executes a program compiled
// earlier in this process (by ID) or compiles Source first.
type RunRequest struct {
	Session string
	// ID names a retained compilation; empty means compile Source.
	ID string
	// Source and Options are used when ID is empty (see CompileRequest).
	Source  string
	Options Options
	// Init seeds main-program arrays; InitScalars seeds scalars.
	Init        map[string][]float64
	InitScalars map[string]float64
	// Reference requests the sequential reference execution instead of
	// the parallel SPMD run.
	Reference bool
	// Profile traces the run and stores its profile artifact in the
	// service's profile store; the outcome carries the artifact's
	// content-hash id. Ignored for Reference runs (nothing to trace).
	Profile bool
	// Workload labels the stored profile's metadata ("" is fine).
	Workload string
}

// RunOutcome is a run call's result.
type RunOutcome struct {
	// ID is the executed program's id.
	ID string
	// Result carries the run statistics and assembled arrays.
	Result *Result
	// ProfileID addresses the stored profile artifact when the request
	// set Profile (empty otherwise, and for runs whose trace carried no
	// machine activity).
	ProfileID string `json:"profileId,omitempty"`
}

// Run executes a compiled program on the simulated machine. A dropped
// ctx aborts the simulated run through the machine's cooperative-abort
// channel.
func (s *Service) Run(ctx context.Context, req RunRequest) (*RunOutcome, error) {
	start := time.Now()
	if err := s.acquire(ctx, req.Session); err != nil {
		return nil, tagRequest(ctx, err)
	}
	defer s.release()
	out, err := s.runLocked(ctx, req)
	s.mu.Lock()
	s.runs++
	if err != nil {
		s.failures++
	}
	s.mu.Unlock()
	s.met.runs.With(outcomeLabel(err)).Inc()
	s.met.runSec.Observe(time.Since(start).Seconds())
	return out, tagRequest(ctx, err)
}

func (s *Service) runLocked(ctx context.Context, req RunRequest) (*RunOutcome, error) {
	var prog *Program
	id := req.ID
	if id != "" {
		p, err := s.lookup(id)
		if err != nil {
			return nil, err
		}
		prog = p.prog
	} else {
		cres, err := s.compileLocked(ctx, CompileRequest{
			Session: req.Session, Source: req.Source, Options: req.Options,
		})
		if err != nil {
			return nil, err
		}
		prog, id = cres.Program, cres.ID
	}
	ropts := []RunOption{
		WithInit(req.Init),
		WithInitScalars(req.InitScalars),
		WithDeadline(s.cfg.RunDeadline),
	}
	var tr *Trace
	if req.Profile && !req.Reference {
		tr = NewTrace()
		ropts = append(ropts, WithTrace(tr))
	}
	r := NewRunner(ropts...)
	var (
		res *Result
		err error
	)
	if req.Reference {
		res, err = r.RunReferenceContext(ctx, prog)
	} else {
		res, err = r.RunContext(ctx, prog)
	}
	if err != nil {
		return nil, err
	}
	out := &RunOutcome{ID: id, Result: res}
	if tr != nil {
		pf := profile.FromEvents(tr.Events(), profile.Meta{
			ProgramHash: id,
			Workload:    req.Workload,
			P:           prog.P(),
			Backend:     DefaultMachine(prog.P()).Backend.String(),
		})
		if pf != nil {
			pid, err := s.profiles.Put(pf)
			if err != nil {
				return nil, fmt.Errorf("fortd: storing profile: %w", err)
			}
			out.ProfileID = pid
			s.met.profilesStored.Inc()
			s.met.blockedShare.Observe(pf.BlockedShare())
		}
	}
	return out, nil
}

// Profile returns the stored profile artifact for id
// (ErrUnknownProfile when the store does not hold it).
func (s *Service) Profile(id string) (*profile.Profile, error) {
	p, err := s.profiles.Get(id)
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProfile, id)
	}
	return p, nil
}

// Profiles lists the stored profile artifacts, sorted by id.
func (s *Service) Profiles() ([]profile.Entry, error) { return s.profiles.List() }

// Lookup returns the retained source, options and listing for a
// program id (for report rendering and listing diffs).
func (s *Service) Lookup(id string) (src string, opts Options, listing string, err error) {
	p, err := s.lookup(id)
	if err != nil {
		return "", Options{}, "", err
	}
	return p.src, p.opts, p.listing, nil
}
