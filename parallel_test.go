package fortd

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"fortd/internal/recompile"
)

// explainBytes renders an Explain report to a string.
func explainBytes(t *testing.T, ex *Explain) string {
	t.Helper()
	var buf bytes.Buffer
	if err := ex.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// compileWith compiles src and returns the program plus its explain
// report text.
func compileWith(t *testing.T, src string, opts Options) (*Program, string) {
	t.Helper()
	ex := NewExplain()
	opts.Explain = ex
	prog, err := Compile(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return prog, explainBytes(t, ex)
}

// TestParallelCompileDeterministic asserts the tentpole determinism
// contract: for every workload, compiling with Jobs=N on the worker
// pool produces byte-identical listings, reports and optimization
// remarks to the sequential compile — scheduling must never leak into
// the output.
func TestParallelCompileDeterministic(t *testing.T) {
	workloads := []struct {
		name string
		src  string
	}{
		{"jacobi", Jacobi2DSrc(16, 3, 4)},
		{"dgefa", DgefaSrc(32, 4)},
		{"dyndist", Fig15Src(25, 4)},
		{"synthetic", SyntheticProcsSrc(9, 3, 64, 4)},
	}
	for _, w := range workloads {
		w := w
		t.Run(w.name, func(t *testing.T) {
			seq, seqReport := compileWith(t, w.src, DefaultOptions())
			for _, jobs := range []int{2, 8} {
				opts := DefaultOptions()
				opts.Jobs = jobs
				par, parReport := compileWith(t, w.src, opts)
				if got, want := par.Listing(), seq.Listing(); got != want {
					t.Errorf("jobs=%d listing differs from sequential", jobs)
				}
				if got, want := par.Report().String(), seq.Report().String(); got != want {
					t.Errorf("jobs=%d report %q != sequential %q", jobs, got, want)
				}
				if parReport != seqReport {
					t.Errorf("jobs=%d explain report differs from sequential:\n--- jobs=%d ---\n%s--- sequential ---\n%s",
						jobs, jobs, parReport, seqReport)
				}
			}
		})
	}
}

// editDaxpyBody is DgefaSrc(32, 4) with one statement inside daxpy
// edited (an extra scale factor). The edit changes daxpy's source but
// not the summary it exposes to callers, so the invalidation cone is
// exactly {daxpy}.
func editDaxpyBody() string {
	src := DgefaSrc(32, 4)
	edited := strings.Replace(src,
		"a(i,j) = a(i,j) - a(i,k) * a(k,j)",
		"a(i,j) = a(i,j) - 2.0 * a(i,k) * a(k,j)", 1)
	if edited == src {
		panic("edit did not apply")
	}
	return edited
}

// TestSummaryCacheWarmRecompile locks the §8 recompilation behavior,
// run as a cache: a warm recompile of the identical program re-analyzes
// nothing and reproduces the cold outputs byte for byte, and a
// recompile after editing one procedure's body re-analyzes only that
// procedure's invalidation cone.
func TestSummaryCacheWarmRecompile(t *testing.T) {
	src := DgefaSrc(32, 4)
	cache := NewSummaryCache()
	opts := DefaultOptions()
	opts.Cache = cache

	cold, coldReport := compileWith(t, src, opts)
	if len(cold.CacheHits()) != 0 {
		t.Fatalf("cold compile hit %v", cold.CacheHits())
	}
	wantMisses := []string{"MAIN", "daxpy", "dgefa", "dscal", "idamax"}
	if got := fmt.Sprint(cold.CacheMisses()); got != fmt.Sprint(wantMisses) {
		t.Fatalf("cold misses %v, want %v", cold.CacheMisses(), wantMisses)
	}

	warm, warmReport := compileWith(t, src, opts)
	if len(warm.CacheMisses()) != 0 {
		t.Fatalf("warm compile re-analyzed %v", warm.CacheMisses())
	}
	if got := fmt.Sprint(warm.CacheHits()); got != fmt.Sprint(wantMisses) {
		t.Fatalf("warm hits %v, want %v", warm.CacheHits(), wantMisses)
	}
	if warm.Listing() != cold.Listing() {
		t.Error("warm listing differs from cold")
	}
	if warmReport != coldReport {
		t.Errorf("warm explain report differs from cold:\n--- warm ---\n%s--- cold ---\n%s", warmReport, coldReport)
	}
	if warm.Report().String() != cold.Report().String() {
		t.Errorf("warm report %q != cold %q", warm.Report().String(), cold.Report().String())
	}

	// body-only edit: daxpy's key changes, but its caller-visible
	// summary does not, so nothing else is invalidated
	edited, _ := compileWith(t, editDaxpyBody(), opts)
	if got := fmt.Sprint(edited.CacheMisses()); got != fmt.Sprint([]string{"daxpy"}) {
		t.Errorf("edited compile re-analyzed %v, want [daxpy]", edited.CacheMisses())
	}
	if got := fmt.Sprint(edited.CacheHits()); got != fmt.Sprint([]string{"MAIN", "dgefa", "dscal", "idamax"}) {
		t.Errorf("edited compile hits %v", edited.CacheHits())
	}
	// the cache-assembled program must equal an uncached compile of the
	// edited source
	fresh, _ := compileWith(t, editDaxpyBody(), DefaultOptions())
	if edited.Listing() != fresh.Listing() {
		t.Error("cache-assembled listing differs from a fresh compile of the edited source")
	}

	stats := cache.Stats()
	if stats.Hits == 0 || stats.Misses == 0 || stats.Entries == 0 {
		t.Errorf("implausible cache stats %+v", stats)
	}
}

// TestGoldenRecompilationDecisions locks the §8 recompilation decisions
// for the dgefa case study as a golden file: for each edit scenario it
// records the summary-cache invalidation cone and the recompilation
// plan of the interface-comparison analysis (internal/recompile), which
// must agree on which unedited procedures are reusable.
func TestGoldenRecompilationDecisions(t *testing.T) {
	base := DgefaSrc(32, 4)
	scenarios := []struct {
		name string
		src  string
	}{
		{"unchanged", base},
		{"daxpy-body-edit", editDaxpyBody()},
		{"dscal-interface-edit", strings.Replace(base,
			"a(i,k) = a(i,k) * t",
			"a(i,k) = a(i,k-1) * t", 1)},
	}

	snap := func(src string) (*Program, *recompile.Database, []string, []string) {
		cache := NewSummaryCache()
		opts := DefaultOptions()
		opts.Cache = cache
		if _, err := Compile(base, opts); err != nil { // prime with the base program
			t.Fatal(err)
		}
		prog, err := Compile(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		return prog, recompile.Snapshot(prog.c), prog.CacheHits(), prog.CacheMisses()
	}

	_, baseDB, _, _ := snap(base)

	var buf bytes.Buffer
	for _, sc := range scenarios {
		_, db, hits, misses := snap(sc.src)
		fmt.Fprintf(&buf, "scenario %s\n", sc.name)
		fmt.Fprintf(&buf, "  cache reanalyzed: %v\n", misses)
		fmt.Fprintf(&buf, "  cache reused:     %v\n", hits)
		fmt.Fprintf(&buf, "  recompile plan:   %v\n", recompile.Plan(baseDB, db))
		fmt.Fprintf(&buf, "  unchanged:        %v\n", recompile.Unchanged(baseDB, db))
	}

	path := filepath.Join("testdata", "golden", "dgefa_recompile.golden")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGolden -update` to create)", err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("recompilation decisions differ from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// BenchmarkCompileParallel compares sequential against pooled phase-3
// code generation on a wide synthetic program (16 independent
// procedures): jobs=1 is the paper's reverse-topological walk, jobs=N
// schedules the same waves over N workers. On a multi-core machine the
// jobs=N lane should run the 16 leaf procedures concurrently; both
// lanes produce byte-identical output (TestParallelCompileDeterministic).
func BenchmarkCompileParallel(b *testing.B) {
	src := SyntheticProcsSrc(16, 16, 256, 4)
	for _, jobs := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Jobs = jobs
			for i := 0; i < b.N; i++ {
				if _, err := Compile(src, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileWarmCache measures what the summary cache saves on a
// recompile with nothing edited (every procedure hits).
func BenchmarkCompileWarmCache(b *testing.B) {
	src := SyntheticProcsSrc(16, 16, 256, 4)
	opts := DefaultOptions()
	opts.Cache = NewSummaryCache()
	if _, err := Compile(src, opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// TestParallelCompileSpeedup measures the wall-clock benefit of the
// phase-3 worker pool on a wide synthetic program. It is a smoke guard,
// not a benchmark — BenchmarkCompileParallel gives real numbers.
func TestParallelCompileSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skip("needs >= 4 CPUs")
	}
	src := SyntheticProcsSrc(16, 16, 256, 4)
	compileOnce := func(jobs int) time.Duration {
		opts := DefaultOptions()
		opts.Jobs = jobs
		start := time.Now()
		if _, err := Compile(src, opts); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	best := func(jobs int) time.Duration {
		b := compileOnce(jobs) // warm-up + first sample
		for i := 0; i < 4; i++ {
			if d := compileOnce(jobs); d < b {
				b = d
			}
		}
		return b
	}
	seq := best(1)
	par := best(runtime.GOMAXPROCS(0))
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, parallel %v, speedup %.2fx", seq, par, speedup)
	if speedup < 1.2 {
		t.Errorf("parallel compile speedup %.2fx < 1.2x (seq %v, par %v)", speedup, seq, par)
	}
}
