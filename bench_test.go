package fortd

import (
	"fmt"
	"testing"
)

// The benchmark harness regenerates every measurable table/figure of
// the paper. Wall-clock time measures this implementation; the figures
// of merit for the paper's claims are the reported custom metrics:
// sim_µs (simulated parallel execution time), msgs and words
// (communication), and remaps — compare them across the paired
// benchmarks exactly as the paper compares its code variants.

func mustCompile(b *testing.B, src string, opts Options) *Program {
	b.Helper()
	p, err := Compile(src, opts)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func runOnce(b *testing.B, p *Program, init map[string][]float64) *Result {
	b.Helper()
	res, err := NewRunner(WithInit(init)).Run(p)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func report(b *testing.B, res *Result) {
	b.ReportMetric(res.Stats.Time, "sim_µs")
	b.ReportMetric(float64(res.Stats.Messages), "msgs")
	b.ReportMetric(float64(res.Stats.Words), "words")
	if res.Stats.Remaps > 0 {
		b.ReportMetric(float64(res.Stats.Remaps), "remaps")
	}
}

// --- Figure 2 vs Figure 3 ---------------------------------------------------

// BenchmarkFig2CompileTime is the paper's Figure 2: interprocedurally
// compiled code for the Figure 1 program (vectorized boundary
// messages, reduced loop bounds).
func BenchmarkFig2CompileTime(b *testing.B) {
	p := mustCompile(b, Fig1Src(400, 4), DefaultOptions())
	init := map[string][]float64{"X": Ramp(400)}
	var res *Result
	for i := 0; i < b.N; i++ {
		res = runOnce(b, p, init)
	}
	report(b, res)
}

// BenchmarkFig3RuntimeResolution is the Figure 3 baseline: per-element
// ownership tests and element messages.
func BenchmarkFig3RuntimeResolution(b *testing.B) {
	opts := DefaultOptions()
	opts.Strategy = RuntimeResolution
	p := mustCompile(b, Fig1Src(400, 4), opts)
	init := map[string][]float64{"X": Ramp(400)}
	var res *Result
	for i := 0; i < b.N; i++ {
		res = runOnce(b, p, init)
	}
	report(b, res)
}

// --- Figure 10 vs Figure 12 -------------------------------------------------

// BenchmarkFig10Delayed is Figure 10: cloning plus delayed
// instantiation vectorizes the boundary exchange out of the caller's
// loop — one message per boundary for the whole program.
func BenchmarkFig10Delayed(b *testing.B) {
	p := mustCompile(b, Fig4Src(100, 4), DefaultOptions())
	init := map[string][]float64{"X": Ramp(100 * 100), "Y": Ramp(100 * 100)}
	var res *Result
	for i := 0; i < b.N; i++ {
		res = runOnce(b, p, init)
	}
	report(b, res)
}

// BenchmarkFig12Immediate is Figure 12: immediate instantiation sends
// one message per procedure invocation (100x more).
func BenchmarkFig12Immediate(b *testing.B) {
	opts := DefaultOptions()
	opts.Strategy = Immediate
	p := mustCompile(b, Fig4Src(100, 4), opts)
	init := map[string][]float64{"X": Ramp(100 * 100), "Y": Ramp(100 * 100)}
	var res *Result
	for i := 0; i < b.N; i++ {
		res = runOnce(b, p, init)
	}
	report(b, res)
}

// --- Figure 16 ladder --------------------------------------------------------

// BenchmarkFig16Remap runs the dynamic-decomposition program at each
// optimization level; the remaps metric reproduces the 4T/2T/2/1
// ladder (T=25).
func BenchmarkFig16Remap(b *testing.B) {
	levels := []struct {
		name  string
		level RemapLevel
	}{
		{"none", RemapNone},
		{"live", RemapLive},
		{"hoist", RemapHoist},
		{"kills", RemapKills},
	}
	for _, l := range levels {
		b.Run(l.name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.RemapOpt = l.level
			p := mustCompile(b, Fig15Src(25, 4), opts)
			init := map[string][]float64{"X": Ramp(100)}
			var res *Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, p, init)
			}
			report(b, res)
		})
	}
}

// --- §9 dgefa ----------------------------------------------------------------

// BenchmarkDgefaStrategies is the §9 strategy comparison.
func BenchmarkDgefaStrategies(b *testing.B) {
	const n = 64
	variants := []struct {
		name string
		s    Strategy
	}{
		{"interproc", Interprocedural},
		{"immediate", Immediate},
		{"runtime", RuntimeResolution},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.P = 4
			opts.Strategy = v.s
			p := mustCompile(b, DgefaSrc(n, 4), opts)
			init := map[string][]float64{"a": DgefaMatrix(n)}
			var res *Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, p, init)
			}
			report(b, res)
		})
	}
}

// BenchmarkDgefaScaling is the §9 processor sweep.
func BenchmarkDgefaScaling(b *testing.B) {
	const n = 96
	for _, procs := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("P%d", procs), func(b *testing.B) {
			opts := DefaultOptions()
			opts.P = procs
			p := mustCompile(b, DgefaSrc(n, procs), opts)
			init := map[string][]float64{"a": DgefaMatrix(n)}
			var res *Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, p, init)
			}
			report(b, res)
		})
	}
}

// --- Stencils ------------------------------------------------------------------

// BenchmarkJacobi2D sweeps processors on the 2-D five-point stencil.
func BenchmarkJacobi2D(b *testing.B) {
	const n, steps = 64, 10
	grid := make([]float64, n*n)
	for j := 0; j < n; j++ {
		grid[j] = 100
		grid[(n-1)*n+j] = 100
	}
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P%d", procs), func(b *testing.B) {
			opts := DefaultOptions()
			opts.P = procs
			p := mustCompile(b, Jacobi2DSrc(n, steps, procs), opts)
			init := map[string][]float64{"a": grid}
			var res *Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, p, init)
			}
			report(b, res)
		})
	}
}

// --- Ablations (DESIGN.md design choices) -----------------------------------

// BenchmarkAblationCloning contrasts cloning with the fallback the
// compiler takes when cloning is disabled (CloneLimit=0) on the
// Figure 4 program: with multiple decompositions reaching F1/F2 and no
// clones, the procedures execute replicated — every processor does all
// the work (zero messages, ~P× the simulated time).
func BenchmarkAblationCloning(b *testing.B) {
	configs := []struct {
		name  string
		limit int
	}{
		{"cloning", 64},
		{"noCloning", 0},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			opts := DefaultOptions()
			opts.CloneLimit = cfg.limit
			p := mustCompile(b, Fig4Src(100, 4), opts)
			init := map[string][]float64{"X": Ramp(100 * 100), "Y": Ramp(100 * 100)}
			var res *Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, p, init)
			}
			report(b, res)
		})
	}
}

// --- Compiler speed ------------------------------------------------------------

// BenchmarkCompileDgefa measures the compiler itself (parse through
// code generation) on the dgefa program.
func BenchmarkCompileDgefa(b *testing.B) {
	src := DgefaSrc(128, 8)
	opts := DefaultOptions()
	opts.P = 8
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileFig4 measures compilation of the cloning-heavy
// Figure 4 program.
func BenchmarkCompileFig4(b *testing.B) {
	src := Fig4Src(100, 4)
	opts := DefaultOptions()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(src, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §6 dynamic distribution (ADI phases) -------------------------------------

// BenchmarkADI contrasts static distribution (pipelined boundary
// exchange in the column phase) with dynamic redistribution between
// phases.
func BenchmarkADI(b *testing.B) {
	const n, steps = 32, 2
	for _, dynamic := range []bool{false, true} {
		name := "static"
		if dynamic {
			name = "dynamic"
		}
		b.Run(name, func(b *testing.B) {
			p := mustCompile(b, ADISrc(n, steps, 4, dynamic), DefaultOptions())
			init := map[string][]float64{"a": Ramp(n * n)}
			var res *Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, p, init)
			}
			report(b, res)
		})
	}
}

// --- Reductions ----------------------------------------------------------------

// BenchmarkReduction measures a recognized global sum against the
// prefix-sum fallback on the same data.
func BenchmarkReduction(b *testing.B) {
	srcFor := func(reduction bool) string {
		body := `        s = s + X(i)`
		if !reduction {
			body = `        s = s + X(i)
        X(i) = s`
		}
		return `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL X(200)
      DISTRIBUTE X(BLOCK)
      s = 0.0
      do i = 1,200
` + body + `
      enddo
      END
`
	}
	for _, recognized := range []bool{true, false} {
		name := "recognized"
		if !recognized {
			name = "fallback"
		}
		b.Run(name, func(b *testing.B) {
			p := mustCompile(b, srcFor(recognized), DefaultOptions())
			init := map[string][]float64{"X": Ramp(200)}
			var res *Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, p, init)
			}
			report(b, res)
		})
	}
}

// --- Tracing -------------------------------------------------------------------

// BenchmarkTraceOverhead measures the run-time cost of the tracing
// subsystem: "disabled" is the nil-sink fast path every untraced run
// takes (the acceptance bar is <5% regression against a build without
// instrumentation), "enabled" collects and discards a full event
// stream.
func BenchmarkTraceOverhead(b *testing.B) {
	src := Jacobi2DSrc(32, 5, 4)
	init := map[string][]float64{"a": Ramp(32 * 32)}
	p := mustCompile(b, src, DefaultOptions())

	b.Run("disabled", func(b *testing.B) {
		r := NewRunner(WithInit(init)) // no WithTrace: nil sink
		for i := 0; i < b.N; i++ {
			if _, err := r.Run(p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := NewTrace()
			if _, err := NewRunner(WithInit(init), WithTrace(tr)).Run(p); err != nil {
				b.Fatal(err)
			}
			if len(tr.Events()) == 0 {
				b.Fatal("no events collected")
			}
		}
	})
}

// --- Optimization remarks -------------------------------------------------------

// BenchmarkExplainOverhead measures the compile-time cost of the remark
// engine: "disabled" is the nil-collector fast path every unexplained
// compile takes (static Why strings are pointer stores, so the bar is
// zero extra allocations — guarded by ReportAllocs against the enabled
// variant), "enabled" collects and discards a full remark stream.
func BenchmarkExplainOverhead(b *testing.B) {
	src := DgefaSrc(64, 4)
	opts := DefaultOptions()

	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Compile(src, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := opts
			o.Explain = NewExplain()
			if _, err := Compile(src, o); err != nil {
				b.Fatal(err)
			}
			if len(o.Explain.Remarks()) == 0 {
				b.Fatal("no remarks collected")
			}
		}
	})
}
