package fortd

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"fortd/internal/metrics"
)

func newTestService(t *testing.T, cfg ServiceConfig) *Service {
	t.Helper()
	svc, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// TestServiceCompileRun drives the basic session flow: compile, run by
// the returned id, and verify the result matches a direct library run.
func TestServiceCompileRun(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	src := Jacobi1DSrc(64, 4, 4)
	init := map[string][]float64{"a": Ramp(64), "b": make([]float64, 64)}

	res, err := svc.Compile(context.Background(), CompileRequest{Session: "s1", Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID == "" || res.Listing == "" {
		t.Fatalf("empty id or listing: %+v", res)
	}
	if len(res.CacheMisses) == 0 {
		t.Fatalf("cold compile reported no cache misses")
	}

	out, err := svc.Run(context.Background(), RunRequest{Session: "s1", ID: res.ID, Init: init})
	if err != nil {
		t.Fatal(err)
	}

	direct, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Listing() != res.Listing {
		t.Fatalf("service listing differs from direct compile")
	}
	want, err := NewRunner(WithInit(init)).Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Stats.Time != want.Stats.Time ||
		out.Result.Stats.Messages != want.Stats.Messages ||
		out.Result.Stats.Words != want.Stats.Words {
		t.Fatalf("service run stats %v != direct run stats %v", out.Result.Stats, want.Stats)
	}
	for name, vals := range want.Arrays {
		got := out.Result.Arrays[name]
		if len(got) != len(vals) {
			t.Fatalf("array %s: %d elements, want %d", name, len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("array %s[%d] = %v, want %v", name, i, got[i], vals[i])
			}
		}
	}

	// run with inline source (no id) compiles warm through the shared cache
	out2, err := svc.Run(context.Background(), RunRequest{Session: "s1", Source: src, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if out2.ID != res.ID {
		t.Fatalf("inline-source run id %s != compile id %s", out2.ID, res.ID)
	}

	st := svc.Stats()
	if st.Compiles < 2 || st.Runs != 2 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want >=2 compiles, 2 runs, 0 failures", st)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("second compile did not hit the shared cache: %+v", st.Cache)
	}
}

// TestServiceRunUnknownID pins the typed not-found error.
func TestServiceRunUnknownID(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	_, err := svc.Run(context.Background(), RunRequest{ID: "deadbeef"})
	if !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("err = %v, want ErrUnknownProgram", err)
	}
	_, _, _, err = svc.Lookup("deadbeef")
	if !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("Lookup err = %v, want ErrUnknownProgram", err)
	}
}

// TestServiceRateLimit exhausts a session's token bucket and verifies
// the typed error, the counter, and that other sessions are unaffected.
func TestServiceRateLimit(t *testing.T) {
	svc := newTestService(t, ServiceConfig{RateLimit: 0.001, RateBurst: 2})
	src := Fig1Src(32, 4)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := svc.Compile(ctx, CompileRequest{Session: "greedy", Source: src}); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	_, err := svc.Compile(ctx, CompileRequest{Session: "greedy", Source: src})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if _, err := svc.Compile(ctx, CompileRequest{Session: "patient", Source: src}); err != nil {
		t.Fatalf("other session was throttled too: %v", err)
	}
	if st := svc.Stats(); st.RateLimited != 1 || st.Sessions != 2 {
		t.Fatalf("stats = %+v, want RateLimited=1 Sessions=2", st)
	}
}

// TestServiceOverload saturates a 1-worker, depth-1 service and
// verifies the queue-full fast failure.
func TestServiceOverload(t *testing.T) {
	svc := newTestService(t, ServiceConfig{Workers: 1, QueueDepth: 1})
	big := SyntheticProcsSrc(80, 10, 128, 4)
	ctx := context.Background()

	errc := make(chan error, 2)
	go func() { // occupies the only worker
		_, err := svc.Compile(ctx, CompileRequest{Session: "a", Source: big})
		errc <- err
	}()
	waitFor(t, func() bool { return svc.Stats().InFlight == 1 })
	go func() { // fills the queue
		_, err := svc.Compile(ctx, CompileRequest{Session: "b", Source: big})
		errc <- err
	}()
	waitFor(t, func() bool { return svc.Stats().Queued == 1 })

	_, err := svc.Compile(ctx, CompileRequest{Session: "c", Source: Fig1Src(32, 4)})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if st := svc.Stats(); st.Rejected != 1 {
		t.Fatalf("stats = %+v, want Rejected=1", st)
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("queued compile %d failed: %v", i, err)
		}
	}
}

// TestServiceQueueWaitCancel verifies that a request waiting for a
// worker slot honours its context.
func TestServiceQueueWaitCancel(t *testing.T) {
	svc := newTestService(t, ServiceConfig{Workers: 1, QueueDepth: 4})
	big := SyntheticProcsSrc(80, 10, 128, 4)
	done := make(chan error, 1)
	go func() {
		_, err := svc.Compile(context.Background(), CompileRequest{Session: "a", Source: big})
		done <- err
	}()
	waitFor(t, func() bool { return svc.Stats().InFlight == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	waiting := make(chan error, 1)
	go func() {
		_, err := svc.Compile(ctx, CompileRequest{Session: "b", Source: big})
		waiting <- err
	}()
	waitFor(t, func() bool { return svc.Stats().Queued == 1 })
	cancel()
	select {
	case err := <-waiting:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued request err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled queued request did not return")
	}
	if err := <-done; err != nil {
		t.Fatalf("running compile failed: %v", err)
	}
	if st := svc.Stats(); st.Queued != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", st.Queued)
	}
}

// TestServiceClosed pins the post-Close behaviour.
func TestServiceClosed(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	svc.Close()
	_, err := svc.Compile(context.Background(), CompileRequest{Source: Fig1Src(32, 4)})
	if !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("err = %v, want ErrServiceClosed", err)
	}
}

// TestServiceProgramLRU verifies the bounded program table evicts the
// least recently used compilation.
func TestServiceProgramLRU(t *testing.T) {
	svc := newTestService(t, ServiceConfig{MaxPrograms: 2})
	ctx := context.Background()
	ids := make([]string, 3)
	for i, src := range []string{Fig1Src(32, 4), Fig1Src(48, 4), Fig1Src(64, 4)} {
		res, err := svc.Compile(ctx, CompileRequest{Source: src})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = res.ID
	}
	if _, _, _, err := svc.Lookup(ids[0]); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("oldest program still retained, err = %v", err)
	}
	for _, id := range ids[1:] {
		if _, _, _, err := svc.Lookup(id); err != nil {
			t.Fatalf("recent program %s evicted: %v", id, err)
		}
	}
}

// TestServiceRejectsOwnedOptions verifies per-request options cannot
// smuggle in a cache or observability sinks.
func TestServiceRejectsOwnedOptions(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	ctx := context.Background()
	for _, opts := range []Options{
		{Cache: NewSummaryCache()},
		{CacheDir: t.TempDir()},
		{Trace: NewTrace()},
		{Explain: NewExplain()},
	} {
		if _, err := svc.Compile(ctx, CompileRequest{Source: Fig1Src(32, 4), Options: opts}); err == nil {
			t.Fatalf("Compile accepted request options %+v", opts)
		}
	}
}

// TestServiceMetrics wires a live registry into a Service and checks
// the recorded families: outcome counters, latency histogram counts
// matching request totals, rejection reasons, and the cache-tier
// counters sampled straight from the summary cache.
func TestServiceMetrics(t *testing.T) {
	reg := metrics.New()
	svc := newTestService(t, ServiceConfig{Metrics: reg, RateLimit: 0.001, RateBurst: 3})
	src := Fig1Src(32, 4)
	ctx := context.Background()
	if _, err := svc.Compile(ctx, CompileRequest{Session: "m", Source: src}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Compile(ctx, CompileRequest{Session: "m", Source: src}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Compile(ctx, CompileRequest{Session: "m", Source: "PROGRAM ("}); err == nil {
		t.Fatal("bad source compiled")
	}
	if _, err := svc.Compile(ctx, CompileRequest{Session: "m", Source: src}); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("4th request err = %v, want ErrRateLimited", err)
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := metrics.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Value("fdd_compiles_total", "outcome", "ok"); got != 2 {
		t.Errorf("compiles ok = %v, want 2", got)
	}
	if got := snap.Value("fdd_compiles_total", "outcome", "error"); got != 1 {
		t.Errorf("compiles error = %v, want 1", got)
	}
	if got := snap.Value("fdd_rejected_total", "reason", "rate-limit"); got != 1 {
		t.Errorf("rate-limit rejections = %v, want 1", got)
	}
	if c, n := snap.Value("fdd_compile_seconds_count"), snap.Value("fdd_compiles_total"); c != n {
		t.Errorf("histogram count %v != compiles_total %v (rejected requests must not observe)", c, n)
	}
	st := svc.Cache().Stats()
	if got := snap.Value("fdd_cache_hits_total", "tier", "memory"); got != float64(st.Hits-st.DiskHits) {
		t.Errorf("memory cache hits = %v, want %d", got, st.Hits-st.DiskHits)
	}
	if got := snap.Value("fdd_cache_misses_total"); got != float64(st.Misses) {
		t.Errorf("cache misses = %v, want %d", got, st.Misses)
	}
	if got := snap.Value("fdd_pool_workers"); got <= 0 {
		t.Errorf("pool workers = %v, want > 0", got)
	}
}

// TestServiceRateLimitRetryAfter pins the typed rate-limit error: it
// matches the ErrRateLimited sentinel and carries a positive refill
// duration consistent with the configured rate.
func TestServiceRateLimitRetryAfter(t *testing.T) {
	svc := newTestService(t, ServiceConfig{RateLimit: 0.5, RateBurst: 1})
	src := Fig1Src(32, 4)
	ctx := context.Background()
	if _, err := svc.Compile(ctx, CompileRequest{Session: "g", Source: src}); err != nil {
		t.Fatal(err)
	}
	_, err := svc.Compile(ctx, CompileRequest{Session: "g", Source: src})
	var rl *RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("err = %T %v, want *RateLimitError", err, err)
	}
	if !errors.Is(err, ErrRateLimited) {
		t.Fatal("RateLimitError does not match the ErrRateLimited sentinel")
	}
	if rl.Session != "g" {
		t.Errorf("Session = %q, want g", rl.Session)
	}
	// 0.5 req/s refills one token in ~2s (a sliver may already have
	// refilled since the first request).
	if rl.RetryAfter <= time.Second || rl.RetryAfter > 2*time.Second {
		t.Errorf("RetryAfter = %v, want ~2s", rl.RetryAfter)
	}
}

// TestServiceRequestID pins the context plumbing: failures under a
// WithRequestID context come back wrapped in a *RequestError naming
// the id, with errors.Is still seeing the underlying typed error.
func TestServiceRequestID(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	ctx := WithRequestID(context.Background(), "req-42")
	if got := RequestIDFrom(ctx); got != "req-42" {
		t.Fatalf("RequestIDFrom = %q", got)
	}
	_, err := svc.Run(ctx, RunRequest{ID: "no-such-id"})
	var re *RequestError
	if !errors.As(err, &re) || re.ID != "req-42" {
		t.Fatalf("err = %T %v, want *RequestError{ID: req-42}", err, err)
	}
	if !errors.Is(err, ErrUnknownProgram) {
		t.Fatal("RequestError hides the underlying typed error")
	}
	// Successes are not wrapped, and an id-free context changes nothing.
	if _, err := svc.Compile(ctx, CompileRequest{Source: Fig1Src(32, 4)}); err != nil {
		t.Fatal(err)
	}
	_, err = svc.Run(context.Background(), RunRequest{ID: "no-such-id"})
	if errors.As(err, &re) {
		t.Fatal("error wrapped without a request id in context")
	}
}

// waitFor polls cond for up to 5s; the deadline only trips when the
// surrounding machinery has genuinely stalled.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
