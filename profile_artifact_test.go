package fortd

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fortd/internal/profile"
)

// seededJacobiProfile compiles the 16×16 Jacobi workload, runs it on
// the given backend under a seeded fault plan, and distills the trace
// into the profile artifact. The Backend meta label is pinned to a
// neutral value so artifacts from different engines can be compared
// byte for byte.
func seededJacobiProfile(t *testing.T, backend Backend) *profile.Profile {
	t.Helper()
	src := Jacobi2DSrc(16, 3, 4)
	prog, err := Compile(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	fp := &FaultPlan{Seed: 7, DelayProb: 0.25, DelayMax: 8}
	_, err = NewRunner(
		WithInit(map[string][]float64{"a": Ramp(16 * 16)}),
		WithBackend(backend), WithTrace(tr), WithFaults(fp),
	).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	pf := profile.FromEvents(tr.Events(), profile.Meta{
		ProgramHash: ProgramID(src, DefaultOptions()),
		Workload:    "jacobi",
		P:           prog.P(),
		Backend:     "any", // normalized: the engines must agree on everything else
		FaultSeed:   fp.Seed,
	})
	if pf == nil {
		t.Fatal("traced run produced no profile")
	}
	return pf
}

// TestProfileByteIdenticalAcrossBackends pins the artifact's
// determinism contract: equal seeded runs serialize to byte-identical
// profiles — run-to-run on one engine, and across the DES and
// goroutine backends (which are trace-equivalent, so once the Backend
// label is normalized nothing may differ).
func TestProfileByteIdenticalAcrossBackends(t *testing.T) {
	marshal := func(p *profile.Profile) []byte {
		data, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	des := marshal(seededJacobiProfile(t, BackendDES))
	desAgain := marshal(seededJacobiProfile(t, BackendDES))
	ref := marshal(seededJacobiProfile(t, BackendGoroutine))
	if !bytes.Equal(des, desAgain) {
		t.Error("two equal seeded DES runs serialized differently")
	}
	if !bytes.Equal(des, ref) {
		t.Errorf("profiles differ across backends:\n--- des ---\n%s\n--- goroutine ---\n%s", des, ref)
	}
	a, err := seededJacobiProfile(t, BackendDES).ID()
	if err != nil {
		t.Fatal(err)
	}
	b, err := seededJacobiProfile(t, BackendGoroutine).ID()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("content ids differ across backends: %s vs %s", a, b)
	}
}

// TestGoldenProfileJacobi pins the canonical serialization itself:
// schema v1 field names, key order, metric values and the content
// hash, via the committed golden artifact.
func TestGoldenProfileJacobi(t *testing.T) {
	src := Jacobi2DSrc(16, 3, 4)
	prog, err := Compile(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	if _, err := NewRunner(WithInit(map[string][]float64{"a": Ramp(16 * 16)}), WithTrace(tr)).Run(prog); err != nil {
		t.Fatal(err)
	}
	pf := profile.FromEvents(tr.Events(), profile.Meta{
		ProgramHash: ProgramID(src, DefaultOptions()),
		Workload:    "jacobi",
		P:           prog.P(),
		Backend:     "des",
	})
	if pf == nil {
		t.Fatal("traced run produced no profile")
	}
	data, err := pf.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden", "jacobi_profile.golden")
	if *update {
		if err := os.WriteFile(path, data, 0644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestGoldenProfile -update` to create)", err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("profile differs from %s: %s", path, firstDiff(data, want))
	}
}

// TestServiceProfileStorePersistence drives the daemon-facing path: a
// profiled run stores the artifact under ProfileDir, a second Service
// sharing the directory (a daemon restart) serves it byte-identically,
// and unknown ids surface the typed error.
func TestServiceProfileStorePersistence(t *testing.T) {
	dir := t.TempDir()
	src := Jacobi2DSrc(16, 3, 4)
	init := map[string][]float64{"a": Ramp(16 * 16)}
	ctx := context.Background()

	svc := newTestService(t, ServiceConfig{ProfileDir: dir})
	out, err := svc.Run(ctx, RunRequest{Session: "s", Source: src, Init: init, Profile: true, Workload: "jacobi"})
	if err != nil {
		t.Fatal(err)
	}
	if out.ProfileID == "" {
		t.Fatal("profiled run returned no profile id")
	}
	plain, err := svc.Run(ctx, RunRequest{Session: "s", Source: src, Init: init})
	if err != nil {
		t.Fatal(err)
	}
	if plain.ProfileID != "" {
		t.Errorf("unprofiled run returned profile id %q", plain.ProfileID)
	}
	p1, err := svc.Profile(out.ProfileID)
	if err != nil {
		t.Fatal(err)
	}

	// restart: a fresh Service over the same directory still serves it
	svc2 := newTestService(t, ServiceConfig{ProfileDir: dir})
	p2, err := svc2.Profile(out.ProfileID)
	if err != nil {
		t.Fatalf("restarted service lost the profile: %v", err)
	}
	b1, _ := p1.Marshal()
	b2, _ := p2.Marshal()
	if !bytes.Equal(b1, b2) {
		t.Error("stored profile changed across restart")
	}
	entries, err := svc2.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if e.ID == out.ProfileID {
			found = true
			if e.Meta.Workload != "jacobi" || e.Meta.P != 4 {
				t.Errorf("entry meta = %+v", e.Meta)
			}
		}
	}
	if !found {
		t.Errorf("Profiles() after restart lacks %s: %+v", out.ProfileID, entries)
	}
	if _, err := svc2.Profile(strings.Repeat("0", 64)); !errors.Is(err, ErrUnknownProfile) {
		t.Errorf("unknown profile err = %v, want ErrUnknownProfile", err)
	}
}

// TestServiceProfileMemStore: without ProfileDir the store is
// in-memory — profiled runs still work, they just don't survive the
// process.
func TestServiceProfileMemStore(t *testing.T) {
	svc := newTestService(t, ServiceConfig{})
	out, err := svc.Run(context.Background(), RunRequest{
		Source:  Jacobi2DSrc(16, 3, 4),
		Init:    map[string][]float64{"a": Ramp(16 * 16)},
		Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.ProfileID == "" {
		t.Fatal("profiled run returned no profile id")
	}
	p, err := svc.Profile(out.ProfileID)
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := p.ID(); id != out.ProfileID {
		t.Errorf("stored profile id %s != reported %s", id, out.ProfileID)
	}
	if p.BlockedShare() < 0 || p.BlockedShare() > 1 {
		t.Errorf("blocked share %v out of [0,1]", p.BlockedShare())
	}
}

// TestProfileDeterministicAcrossServiceAndLibrary: the artifact the
// service stores for a program equals the one a direct library run
// distills, modulo the meta the service fills in — same distillation,
// one definition.
func TestProfileDeterministicAcrossServiceAndLibrary(t *testing.T) {
	src := Jacobi2DSrc(16, 3, 4)
	init := map[string][]float64{"a": Ramp(16 * 16)}
	// The service default mirrors fdd's: overlap inherited by requests
	// that don't ask, so the direct DefaultOptions compile below sees
	// the same generated code.
	svc := newTestService(t, ServiceConfig{Options: DefaultOptions()})
	out, err := svc.Run(context.Background(), RunRequest{Source: src, Init: init, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	stored, err := svc.Profile(out.ProfileID)
	if err != nil {
		t.Fatal(err)
	}

	prog, err := Compile(src, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	if _, err := NewRunner(WithInit(init), WithTrace(tr)).Run(prog); err != nil {
		t.Fatal(err)
	}
	direct := profile.FromEvents(tr.Events(), stored.Meta)
	if direct == nil {
		t.Fatal("direct run produced no profile")
	}
	db, _ := direct.Marshal()
	sb, _ := stored.Marshal()
	if !bytes.Equal(db, sb) {
		t.Errorf("service and library profiles differ: %s", firstDiff(db, sb))
	}
	if fmt.Sprintf("%d", stored.Runs) != "1" {
		t.Errorf("stored profile runs = %d, want 1", stored.Runs)
	}
}
