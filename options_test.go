package fortd

import (
	"strings"
	"testing"
	"time"
)

// TestServiceConfigValidate covers the service-level combinations.
// (Options.Validate itself is covered by TestOptionsValidate in
// trace_test.go; the zero value must also round-trip here because
// ServiceConfig{} is the documented "all defaults" configuration.)
func TestServiceConfigValidate(t *testing.T) {
	if err := (ServiceConfig{}).Validate(); err != nil {
		t.Fatalf("zero ServiceConfig.Validate() = %v", err)
	}
	cases := []struct {
		name string
		cfg  ServiceConfig
		want string
	}{
		{"invalid base options", ServiceConfig{Options: Options{Jobs: -1}}, "Options.Jobs"},
		{"options carry cache", ServiceConfig{Options: Options{Cache: NewSummaryCache()}}, "must not carry a cache"},
		{"options carry cache dir", ServiceConfig{Options: Options{CacheDir: "/tmp/x"}}, "must not carry a cache"},
		{"options carry trace", ServiceConfig{Options: Options{Trace: NewTrace()}}, "Trace"},
		{"options carry explain", ServiceConfig{Options: Options{Explain: NewExplain()}}, "Explain"},
		{"negative workers", ServiceConfig{Workers: -1}, "Workers"},
		{"negative queue", ServiceConfig{QueueDepth: -1}, "QueueDepth"},
		{"negative rate", ServiceConfig{RateLimit: -1}, "RateLimit"},
		{"negative burst", ServiceConfig{RateLimit: 1, RateBurst: -1}, "RateBurst"},
		{"burst without rate", ServiceConfig{RateBurst: 5}, "without RateLimit"},
		{"negative run deadline", ServiceConfig{RunDeadline: -time.Second}, "RunDeadline"},
		{"negative max programs", ServiceConfig{MaxPrograms: -1}, "MaxPrograms"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error mentioning %q", err, c.want)
			}
			if _, serr := NewService(c.cfg); serr == nil {
				t.Fatalf("NewService accepted invalid config %+v", c.cfg)
			}
		})
	}
}
