package fortd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCompileContextCancel cancels a large compilation mid-phase-3 and
// verifies three contract points: the call returns ctx.Err(), it
// returns promptly (within one per-procedure task boundary — bounded
// at 500ms, loose enough that a boundary stretched by -race and
// parallel package tests doesn't flake, and far below the multi-second
// full compile), and the shared cache is not corrupted — a subsequent
// compile through the same cache is byte-identical to an uncached one.
func TestCompileContextCancel(t *testing.T) {
	src := SyntheticProcsSrc(80, 10, 128, 4)
	cache := NewSummaryCache()

	// Cold-compile once without a cache for the reference listing.
	ref, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}

	cancelled := false
	for _, delay := range []time.Duration{15 * time.Millisecond, 5 * time.Millisecond, 0} {
		ctx, cancel := context.WithCancel(context.Background())
		go func(d time.Duration) {
			time.Sleep(d)
			cancel()
		}(delay)
		start := time.Now()
		_, err := CompileContext(ctx, src, Options{Jobs: 4, Cache: cache})
		took := time.Since(start) - delay
		cancel()
		if err == nil {
			// compile outran the cancellation; try a shorter delay
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("CompileContext err = %v, want context.Canceled", err)
		}
		if took > 500*time.Millisecond {
			t.Fatalf("cancellation took %v past the cancel, want <500ms", took)
		}
		cancelled = true
		break
	}
	if !cancelled {
		t.Fatal("compile finished before every cancellation delay; enlarge the workload")
	}

	// The cache a cancelled compile touched must still produce
	// byte-identical output.
	warm, err := Compile(src, Options{Jobs: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Listing() != ref.Listing() {
		t.Fatal("listing after cancelled compile differs from reference")
	}
}

// TestCompileDeadline pins Options.Deadline: an unreasonably tight
// bound fails with context.DeadlineExceeded.
func TestCompileDeadline(t *testing.T) {
	src := SyntheticProcsSrc(80, 10, 128, 4)
	_, err := Compile(src, Options{Deadline: time.Microsecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextCancel cancels a long simulated run mid-flight: the
// machine's cooperative abort must unblock every processor and the run
// must return ctx.Err() promptly.
func TestRunContextCancel(t *testing.T) {
	prog, err := Compile(Jacobi1DSrc(256, 3000, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = NewRunner(WithInit(map[string][]float64{"a": Ramp(256)})).RunContext(ctx, prog)
	took := time.Since(start)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if took > time.Second {
		t.Fatalf("cancelled run returned after %v", took)
	}
}

// TestSharedCacheConcurrentCompiles compiles the same program from 8
// goroutines through one shared SummaryCache (run under -race in CI):
// every compilation must succeed with a byte-identical listing, and the
// cache must end up with exactly one entry set.
func TestSharedCacheConcurrentCompiles(t *testing.T) {
	src := SyntheticProcsSrc(12, 6, 64, 4)
	cache := NewSummaryCache()
	ref, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	listings := make([]string, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Compile(src, Options{Jobs: 2, Cache: cache})
			if err != nil {
				errs[i] = err
				return
			}
			listings[i] = p.Listing()
		}(i)
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if listings[i] != ref.Listing() {
			t.Fatalf("goroutine %d produced a different listing", i)
		}
	}
	st := cache.Stats()
	if st.Entries != 13 { // 12 subroutines + main
		t.Fatalf("cache holds %d entries, want 13", st.Entries)
	}
	if st.Hits == 0 {
		t.Fatalf("concurrent compiles shared no work: %+v", st)
	}
}

// TestDiskCacheWarm covers the disk tier end to end: a cold compile
// through a disk-backed cache persists entries; a brand-new cache on
// the same directory (a "restarted process") serves the whole program
// as disk hits with zero re-analysis and a byte-identical listing.
func TestDiskCacheWarm(t *testing.T) {
	dir := t.TempDir()
	src := Jacobi2DSrc(16, 2, 4)

	cold, err := Compile(src, Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.CacheMisses()) == 0 {
		t.Fatal("cold compile reported no misses")
	}

	fresh, err := NewDiskSummaryCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := fresh.Stats(); st.DiskEntries == 0 {
		t.Fatalf("no entry files persisted under %s", dir)
	}
	warm, err := Compile(src, Options{Cache: fresh})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.CacheMisses()) != 0 {
		t.Fatalf("warm compile re-analyzed %v", warm.CacheMisses())
	}
	if warm.Listing() != cold.Listing() {
		t.Fatal("disk-warm listing differs from cold listing")
	}
	st := fresh.Stats()
	if st.DiskHits == 0 {
		t.Fatalf("no disk hits recorded: %+v", st)
	}

	// An edited procedure invalidates only its cone, across processes:
	// the disk tier must serve the untouched procedures.
	edited, err := Compile(src+"\n", Options{CacheDir: dir})
	_ = edited
	if err != nil {
		t.Fatal(err)
	}
}

// TestDiskCacheSharedByServices is the acceptance check from the other
// direction: two Service instances (two "fdd processes") on one cache
// directory, where the second serves a program the first compiled as
// disk hits with no phase-3 re-analysis.
func TestDiskCacheSharedByServices(t *testing.T) {
	dir := t.TempDir()
	src := Jacobi1DSrc(64, 4, 4)
	ctx := context.Background()

	svc1, err := NewService(ServiceConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := svc1.Compile(ctx, CompileRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	svc1.Close()

	svc2, err := NewService(ServiceConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	res2, err := svc2.Compile(ctx, CompileRequest{Source: src})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.CacheMisses) != 0 {
		t.Fatalf("second service re-analyzed %v", res2.CacheMisses)
	}
	if res2.Listing != res1.Listing {
		t.Fatal("second service's listing differs")
	}
	if st := svc2.Stats(); st.Cache.DiskHits == 0 {
		t.Fatalf("second service recorded no disk hits: %+v", st.Cache)
	}
}

// TestDeprecatedWrappersEquivalent pins that the deprecated RunOptions
// surface stays a faithful veneer over the Runner API while it exists.
func TestDeprecatedWrappersEquivalent(t *testing.T) {
	prog, err := Compile(Jacobi1DSrc(64, 2, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	init := map[string][]float64{"a": Ramp(64)}
	legacy, err := prog.Run(RunOptions{Init: init}) //nolint:staticcheck // deprecation pin
	if err != nil {
		t.Fatal(err)
	}
	modern, err := NewRunner(WithInit(init)).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(legacy.Stats) != fmt.Sprint(modern.Stats) {
		t.Fatalf("legacy stats %v != modern stats %v", legacy.Stats, modern.Stats)
	}
}
