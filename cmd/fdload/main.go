// Command fdload is the load generator for the fdd compile daemon: it
// drives N concurrent sessions of mixed compile / recompile / run
// requests against a running server and verifies the service's
// correctness contracts under concurrency:
//
//   - determinism: every SPMD listing returned for one program id is
//     byte-identical across sessions, and every run of one id reports
//     identical simulated statistics;
//   - invalidation (§8 as a cache predicate): a body-only edit may only
//     re-analyze the edited procedure, an interface-affecting edit only
//     the edited procedure plus its callers, and a recompile of
//     already-cached source must be all hits.
//
// It reports throughput and per-operation latency percentiles, and
// exits non-zero on any violated invariant or unexpected error.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// The workload: one main program calling two independent stencil
// sweeps. Editing sweepa's coefficient changes only its own body hash
// (same communication summary, so MAIN's consumed inputs are
// unchanged); editing the shift distance changes sweepa's delayed
// communication, which MAIN consumes, so MAIN is invalidated with it.
// sweepb is untouched by every variant and must never be re-analyzed
// after the priming compile.
func src(coef string, shift int) string {
	return fmt.Sprintf(`
      PROGRAM MAIN
      PARAMETER (n$proc = 4)
      REAL a(64), b(64)
      DISTRIBUTE a(BLOCK)
      DISTRIBUTE b(BLOCK)
      call sweepa(a)
      call sweepb(b)
      END
      SUBROUTINE sweepa(x)
      REAL x(64)
      do i = %d, 63
        x(i) = %s * x(i-%d) + 1.0
      enddo
      END
      SUBROUTINE sweepb(x)
      REAL x(64)
      do i = 2, 63
        x(i) = 0.5 * x(i+1) + 1.0
      enddo
      END
`, shift+1, coef, shift)
}

var (
	srcBase  = src("0.5", 1)
	srcBody  = src("0.25", 1) // body-only edit of sweepa
	srcIface = src("0.5", 2)  // interface-affecting edit of sweepa

	// allowed re-analysis sets per variant, compiled after priming
	coneBase  = map[string]bool{} // warm recompile: all hits
	coneBody  = map[string]bool{"sweepa": true}
	coneIface = map[string]bool{"sweepa": true, "MAIN": true}
)

type compileResp struct {
	ID          string   `json:"id"`
	Listing     string   `json:"listing"`
	CacheMisses []string `json:"cacheMisses"`
}

type runResp struct {
	ID        string `json:"id"`
	ProfileID string `json:"profileId"`
	Stats     struct {
		Summary string `json:"summary"`
	} `json:"stats"`
}

type errResp struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
	} `json:"error"`
}

// checker accumulates the cross-session invariants.
type checker struct {
	mu         sync.Mutex
	listings   map[string]string // id -> sha256 of listing
	runStats   map[string]string // id -> stats summary line
	profiles   map[string]string // program id -> profile artifact id
	violations []string
}

func (c *checker) violate(format string, args ...any) {
	c.mu.Lock()
	if len(c.violations) < 20 {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
	c.mu.Unlock()
}

func (c *checker) listing(id, listing string) {
	sum := sha256.Sum256([]byte(listing))
	h := hex.EncodeToString(sum[:])
	c.mu.Lock()
	prev, seen := c.listings[id]
	if !seen {
		c.listings[id] = h
	}
	c.mu.Unlock()
	if seen && prev != h {
		c.violate("non-deterministic listing for id %.12s: %s vs %s", id, prev, h)
	}
}

func (c *checker) run(id, summary string) {
	c.mu.Lock()
	prev, seen := c.runStats[id]
	if !seen {
		c.runStats[id] = summary
	}
	c.mu.Unlock()
	if seen && prev != summary {
		c.violate("non-deterministic run stats for id %.12s:\n  %s\n  %s", id, prev, summary)
	}
}

// profile asserts the profile-artifact determinism contract: equal
// runs of one program id must store byte-identical artifacts, so the
// content-hash profile id per program id is unique across sessions.
func (c *checker) profile(id, profileID string) {
	if profileID == "" {
		c.violate("profiled run of id %.12s returned no profileId", id)
		return
	}
	c.mu.Lock()
	prev, seen := c.profiles[id]
	if !seen {
		c.profiles[id] = profileID
	}
	c.mu.Unlock()
	if seen && prev != profileID {
		c.violate("non-deterministic profile for id %.12s: %.12s vs %.12s", id, prev, profileID)
	}
}

func (c *checker) cone(label string, allowed map[string]bool, misses []string) {
	for _, proc := range misses {
		if !allowed[proc] {
			c.violate("%s compile re-analyzed %q outside its invalidation cone", label, proc)
		}
	}
}

// latencies is one operation class's samples.
type latencies struct {
	mu sync.Mutex
	d  []time.Duration
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.d = append(l.d, d)
	l.mu.Unlock()
}

func (l *latencies) percentiles() (n int, p50, p95, p99 time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.d) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(l.d, func(i, j int) bool { return l.d[i] < l.d[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(l.d)-1))
		return l.d[i]
	}
	return len(l.d), at(0.50), at(0.95), at(0.99)
}

type client struct {
	base    string
	hc      *http.Client
	chk     *checker
	retries int

	mu          sync.Mutex
	ok          int64
	throttled   int64 // 429/503 responses seen (each is retried)
	dropped     int64 // requests abandoned after exhausting retries
	failures    int64
	failSamples []string
}

func (cl *client) fail(op string, err error) {
	cl.mu.Lock()
	cl.failures++
	if len(cl.failSamples) < 10 {
		cl.failSamples = append(cl.failSamples, op+": "+err.Error())
	}
	cl.mu.Unlock()
}

// post sends one JSON request, retrying 429/503 (the server's
// rate-limit and queue-full fast failures) with capped exponential
// backoff the way a production client would. Each throttle response is
// counted; exhausting the retries surfaces as throttled=true.
func (cl *client) post(path string, req, resp any) (throttled bool, err error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return false, err
	}
	backoff := 10 * time.Millisecond
	for attempt := 0; ; attempt++ {
		hr, err := cl.hc.Post(cl.base+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return false, err
		}
		body, err := io.ReadAll(hr.Body)
		hr.Body.Close()
		if err != nil {
			return false, err
		}
		if hr.StatusCode == http.StatusTooManyRequests || hr.StatusCode == http.StatusServiceUnavailable {
			if hr.StatusCode == http.StatusTooManyRequests && hr.Header.Get("Retry-After") == "" {
				cl.chk.violate("429 response missing its Retry-After header")
			}
			cl.mu.Lock()
			cl.throttled++
			cl.mu.Unlock()
			if attempt >= cl.retries {
				return true, nil
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > 500*time.Millisecond {
				backoff = 500 * time.Millisecond
			}
			continue
		}
		if hr.StatusCode != http.StatusOK {
			var er errResp
			if json.Unmarshal(body, &er) == nil && er.Error.Message != "" {
				return false, fmt.Errorf("%d %s: %s", hr.StatusCode, er.Error.Kind, er.Error.Message)
			}
			return false, fmt.Errorf("status %d: %.200s", hr.StatusCode, body)
		}
		return false, json.Unmarshal(body, resp)
	}
}

func ramp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// session runs one client session's iteration mix.
func (cl *client) session(id int, iters int, lat map[string]*latencies) {
	sess := fmt.Sprintf("s%04d", id)
	lastID := ""
	compile := func(label, source string, cone map[string]bool) {
		start := time.Now()
		var resp compileResp
		throttled, err := cl.post("/compile", map[string]any{"session": sess, "source": source}, &resp)
		took := time.Since(start)
		switch {
		case err != nil:
			cl.fail("compile/"+label, err)
		case throttled:
			cl.mu.Lock()
			cl.dropped++
			cl.mu.Unlock()
		default:
			cl.mu.Lock()
			cl.ok++
			cl.mu.Unlock()
			lat["compile"].add(took)
			cl.chk.listing(resp.ID, resp.Listing)
			cl.chk.cone(label, cone, resp.CacheMisses)
			if label == "base" {
				lastID = resp.ID
			}
		}
	}
	run := func() {
		req := map[string]any{
			"session": sess,
			"init":    map[string][]float64{"a": ramp(64), "b": ramp(64)},
			"profile": true, // every load run stores a profile artifact
		}
		if lastID != "" {
			req["id"] = lastID
		} else {
			req["source"] = srcBase
		}
		start := time.Now()
		var resp runResp
		throttled, err := cl.post("/run", req, &resp)
		took := time.Since(start)
		switch {
		case err != nil:
			cl.fail("run", err)
		case throttled:
			cl.mu.Lock()
			cl.dropped++
			cl.mu.Unlock()
		default:
			cl.mu.Lock()
			cl.ok++
			cl.mu.Unlock()
			lat["run"].add(took)
			cl.chk.run(resp.ID, resp.Stats.Summary)
			cl.chk.profile(resp.ID, resp.ProfileID)
		}
	}
	for it := 0; it < iters; it++ {
		switch (id + it) % 4 {
		case 0:
			compile("base", srcBase, coneBase)
		case 1:
			compile("body-edit", srcBody, coneBody)
		case 2:
			compile("iface-edit", srcIface, coneIface)
		case 3:
			run()
		}
	}
}

func main() {
	var (
		addr      = flag.String("addr", "http://localhost:8700", "fdd base URL")
		sessions  = flag.Int("sessions", 500, "concurrent sessions")
		iters     = flag.Int("iters", 4, "requests per session")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		retries   = flag.Int("retries", 40, "max retries per request on 429/503")
		doScrape  = flag.Bool("scrape", false, "poll /metrics during the run and assert counter/histogram consistency")
		scrapeInt = flag.Duration("scrape-interval", 250*time.Millisecond, "poll period for -scrape")
	)
	flag.Parse()

	cl := &client{
		base:    *addr,
		hc:      &http.Client{Timeout: *timeout},
		chk:     &checker{listings: map[string]string{}, runStats: map[string]string{}, profiles: map[string]string{}},
		retries: *retries,
	}
	lat := map[string]*latencies{"compile": {}, "run": {}}

	// Prime the cache with the base program from a dedicated session so
	// the per-variant invalidation cones are meaningful: after this,
	// sweepb (and for body edits, MAIN) must always be served warm.
	var prime compileResp
	if _, err := cl.post("/compile", map[string]any{"session": "prime", "source": srcBase}, &prime); err != nil {
		fmt.Fprintln(os.Stderr, "fdload: priming compile failed:", err)
		os.Exit(1)
	}
	cl.chk.listing(prime.ID, prime.Listing)
	cl.ok, cl.failures, cl.throttled, cl.dropped = 0, 0, 0, 0

	var sc *scraper
	if *doScrape {
		sc = startScraper(*addr, cl.hc, *scrapeInt)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl.session(id, *iters, lat)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	fmt.Printf("fdload: %d sessions x %d requests against %s in %v\n",
		*sessions, *iters, *addr, wall.Round(time.Millisecond))
	fmt.Printf("  ok %d, throttle responses %d (retried), dropped %d, failed %d — %.0f req/s\n",
		cl.ok, cl.throttled, cl.dropped, cl.failures, float64(cl.ok)/wall.Seconds())
	for _, op := range []string{"compile", "run"} {
		n, p50, p95, p99 := lat[op].percentiles()
		if n == 0 {
			continue
		}
		fmt.Printf("  %-7s n=%-5d p50=%-10v p95=%-10v p99=%v\n", op, n,
			p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond))
	}
	fmt.Printf("  distinct programs: %d, all listings byte-identical per id: %t\n",
		len(cl.chk.listings), len(cl.chk.violations) == 0)

	bad := false
	if sc != nil {
		scErrs, polls := sc.finish()
		fmt.Printf("  scrape: %d polls of /metrics, consistency %s\n",
			polls, map[bool]string{true: "ok", false: "VIOLATED"}[len(scErrs) == 0])
		if len(scErrs) > 0 {
			bad = true
			fmt.Fprintln(os.Stderr, "fdload: metrics consistency violations:")
			for _, v := range scErrs {
				fmt.Fprintln(os.Stderr, "  -", v)
			}
		}
	}
	if len(cl.chk.violations) > 0 {
		bad = true
		fmt.Fprintln(os.Stderr, "fdload: invariant violations:")
		for _, v := range cl.chk.violations {
			fmt.Fprintln(os.Stderr, "  -", v)
		}
	}
	if cl.failures > 0 {
		bad = true
		fmt.Fprintln(os.Stderr, "fdload: unexpected failures:")
		for _, s := range cl.failSamples {
			fmt.Fprintln(os.Stderr, "  -", s)
		}
	}
	if bad {
		os.Exit(1)
	}
}
