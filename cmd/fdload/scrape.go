package main

// -scrape mode: while the load run is in flight, poll the daemon's
// /metrics endpoint like a monitoring agent would, and afterwards
// assert the telemetry's internal consistency — the accounting
// identities that must hold if no request slipped through the
// instrumentation:
//
//   - every admitted service request lands in exactly one outcome
//     counter, so requests == ok + each error kind:
//       sum(fdd_http_requests_total{/compile,/run})
//         == sum(fdd_compiles_total) + sum(fdd_runs_total)
//            + sum(fdd_rejected_total)
//   - every outcome observation also lands in the latency histogram:
//       fdd_compile_seconds_count == sum(fdd_compiles_total)   (runs alike)
//   - per route, the HTTP histogram and the request counter agree;
//   - every HTTP 429 is a rate-limit rejection and every 503 an
//     overload/closed rejection — the cross-layer status mapping;
//   - every stored profile artifact observes the blocked-share
//     histogram exactly once:
//       fdd_run_blocked_share_count == fdd_profiles_stored_total.
//
// The end-of-run check retries briefly: a scrape can land between a
// finished response and its middleware bookkeeping, so the counters
// are only required to converge, not to be consistent mid-flight.

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"fortd/internal/metrics"
)

// requiredFamilies is the minimum metric surface the daemon must
// expose across the service, cache, pool and HTTP layers.
var requiredFamilies = []string{
	"fdd_compiles_total", "fdd_runs_total", "fdd_rejected_total",
	"fdd_compile_seconds", "fdd_run_seconds",
	"fdd_run_blocked_share", "fdd_profiles_stored_total",
	"fdd_cache_hits_total", "fdd_cache_misses_total",
	"fdd_queue_depth", "fdd_pool_inflight", "fdd_pool_saturation",
	"fdd_http_requests_total", "fdd_http_request_seconds",
}

// scraper polls /metrics for the duration of the run.
type scraper struct {
	url      string
	hc       *http.Client
	interval time.Duration

	mu    sync.Mutex
	polls int
	errs  []string

	stop chan struct{}
	done chan struct{}
}

func startScraper(base string, hc *http.Client, interval time.Duration) *scraper {
	s := &scraper{
		url: base + "/metrics", hc: hc, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	go s.loop()
	return s
}

func (s *scraper) loop() {
	defer close(s.done)
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			snap, err := s.poll()
			s.mu.Lock()
			s.polls++
			if err != nil {
				s.record("mid-run scrape failed: %v", err)
			} else {
				// Mid-flight, counters may be transiently skewed, but the
				// metric surface itself must be complete and parseable.
				for _, fam := range requiredFamilies {
					if _, ok := snap.Families[fam]; !ok {
						s.record("mid-run scrape missing family %s", fam)
					}
				}
			}
			s.mu.Unlock()
		}
	}
}

// record appends a violation (caller holds s.mu), capped.
func (s *scraper) record(format string, args ...any) {
	if len(s.errs) < 20 {
		s.errs = append(s.errs, fmt.Sprintf(format, args...))
	}
}

func (s *scraper) poll() (*metrics.Snapshot, error) {
	resp, err := s.hc.Get(s.url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return metrics.ParseText(resp.Body)
}

// finish stops the polling loop and runs the consistency check,
// retrying for up to 5s to let in-flight bookkeeping land. It returns
// every violation (nil on success) plus the poll count.
func (s *scraper) finish() (violations []string, polls int) {
	close(s.stop)
	<-s.done
	deadline := time.Now().Add(5 * time.Second)
	var errs []string
	for {
		snap, err := s.poll()
		if err != nil {
			errs = []string{fmt.Sprintf("final scrape failed: %v", err)}
		} else {
			errs = checkConsistency(snap)
		}
		if len(errs) == 0 {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.polls++
	return append(append([]string(nil), s.errs...), errs...), s.polls
}

// checkConsistency asserts the accounting identities on one scrape.
func checkConsistency(snap *metrics.Snapshot) []string {
	var errs []string
	bad := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	for _, fam := range requiredFamilies {
		if _, ok := snap.Families[fam]; !ok {
			bad("family %s missing from /metrics", fam)
		}
	}
	compiles := snap.Value("fdd_compiles_total")
	runs := snap.Value("fdd_runs_total")
	rejected := snap.Value("fdd_rejected_total")
	if ok := snap.Value("fdd_compiles_total", "outcome", "ok"); ok == 0 {
		bad("fdd_compiles_total{outcome=ok} = 0 after a load run")
	}

	// Outcome counters and latency histograms move in lockstep.
	if c := snap.Value("fdd_compile_seconds_count"); c != compiles {
		bad("fdd_compile_seconds_count %v != sum fdd_compiles_total %v", c, compiles)
	}
	if c := snap.Value("fdd_run_seconds_count"); c != runs {
		bad("fdd_run_seconds_count %v != sum fdd_runs_total %v", c, runs)
	}

	// Every stored profile gets exactly one blocked-share observation
	// (the service observes the histogram iff it stores the artifact).
	if c, stored := snap.Value("fdd_run_blocked_share_count"),
		snap.Value("fdd_profiles_stored_total"); c != stored {
		bad("fdd_run_blocked_share_count %v != fdd_profiles_stored_total %v", c, stored)
	}
	if stored := snap.Value("fdd_profiles_stored_total"); stored == 0 {
		bad("fdd_profiles_stored_total = 0 after a load run with profiled runs")
	}

	// Per route, the HTTP request counter and histogram agree.
	for _, route := range []string{"/compile", "/run", "/metrics"} {
		n := snap.Value("fdd_http_requests_total", "route", route)
		c := snap.Value("fdd_http_request_seconds_count", "route", route)
		if n != c {
			bad("route %s: fdd_http_requests_total %v != fdd_http_request_seconds_count %v", route, n, c)
		}
	}

	// Every service request is exactly one outcome or one rejection:
	// requests == ok + each error kind, with nothing double- or
	// un-counted.
	svcRequests := snap.Value("fdd_http_requests_total", "route", "/compile") +
		snap.Value("fdd_http_requests_total", "route", "/run")
	if accounted := compiles + runs + rejected; svcRequests != accounted {
		bad("service requests %v != outcomes+rejections %v (compiles %v + runs %v + rejected %v)",
			svcRequests, accounted, compiles, runs, rejected)
	}

	// Cross-layer status mapping: 429 <=> rate-limit, 503 <=> overload
	// or closed.
	if got, want := snap.Value("fdd_http_requests_total", "status", "429"),
		snap.Value("fdd_rejected_total", "reason", "rate-limit"); got != want {
		bad("HTTP 429s %v != rate-limit rejections %v", got, want)
	}
	if got, want := snap.Value("fdd_http_requests_total", "status", "503"),
		snap.Value("fdd_rejected_total", "reason", "overload")+
			snap.Value("fdd_rejected_total", "reason", "closed"); got != want {
		bad("HTTP 503s %v != overload+closed rejections %v", got, want)
	}
	return errs
}
