// Command fdc is the Fortran D compiler front end: it reads a Fortran D
// source file, compiles it for a MIMD distributed-memory machine, and
// prints the generated SPMD node program plus a compilation report.
//
// Usage:
//
//	fdc [-p N] [-jobs N] [-strategy interproc|runtime|immediate] [-remap none|live|hoist|kills]
//	    [-explain] [-explain-json out.jsonl] [-trace out.json] [-trace-text]
//	    [-deadline 30s] file.f
//
// -explain prints the optimization report (every pass's applied/missed
// decisions with their reasons) to stderr; -explain-json writes the
// same remarks as JSON lines to a file. -trace writes Chrome
// trace_event JSON of the compile phases (where does compile time go);
// -trace-text prints the same phases as a text summary to stderr.
// -deadline bounds the compilation's wall-clock time, so a pathological
// input fails loudly instead of hanging the build.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fortd"
)

// compileWithDeadline runs Compile bounded by d (0: unbounded) via
// Options.Deadline, which cancels the compilation pipeline itself —
// phase boundaries and the phase-3 workers observe the expiry and the
// call returns context.DeadlineExceeded.
func compileWithDeadline(src string, opts fortd.Options, d time.Duration) (*fortd.Program, error) {
	opts.Deadline = d
	return fortd.Compile(src, opts)
}

func main() {
	p := flag.Int("p", 0, "processor count (0: use the program's n$proc)")
	jobs := flag.Int("jobs", 1, "concurrent code-generation workers (output is identical for any value)")
	strategy := flag.String("strategy", "interproc", "interproc | runtime | immediate")
	remap := flag.String("remap", "kills", "none | live | hoist | kills")
	report := flag.Bool("report", true, "print the compilation report")
	explainText := flag.Bool("explain", false, "print the optimization report to stderr")
	explainJSON := flag.String("explain-json", "", "write optimization remarks as JSON lines to this file")
	traceOut := flag.String("trace", "", "write Chrome trace_event JSON of the compile phases to this file")
	traceText := flag.Bool("trace-text", false, "print a compile-phase trace summary to stderr")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline for the compilation (0: none)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fdc [flags] file.f")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdc:", err)
		os.Exit(1)
	}

	var ex *fortd.Explain
	if *explainText || *explainJSON != "" {
		ex = fortd.NewExplain()
	}
	var tr *fortd.Trace
	if *traceOut != "" || *traceText {
		tr = fortd.NewTrace()
	}

	opts := fortd.DefaultOptions()
	opts.P = *p
	opts.Jobs = *jobs
	opts.Explain = ex
	opts.Trace = tr
	switch *strategy {
	case "interproc":
		opts.Strategy = fortd.Interprocedural
	case "runtime":
		opts.Strategy = fortd.RuntimeResolution
	case "immediate":
		opts.Strategy = fortd.Immediate
	default:
		fmt.Fprintf(os.Stderr, "fdc: unknown strategy %q\n", *strategy)
		os.Exit(2)
	}
	switch *remap {
	case "none":
		opts.RemapOpt = fortd.RemapNone
	case "live":
		opts.RemapOpt = fortd.RemapLive
	case "hoist":
		opts.RemapOpt = fortd.RemapHoist
	case "kills":
		opts.RemapOpt = fortd.RemapKills
	default:
		fmt.Fprintf(os.Stderr, "fdc: unknown remap level %q\n", *remap)
		os.Exit(2)
	}

	prog, err := compileWithDeadline(string(src), opts, *deadline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdc:", err)
		os.Exit(1)
	}
	fmt.Print(prog.Listing())
	if *report {
		r := prog.Report()
		fmt.Printf("\n! --- compilation report (P=%d, %s) ---\n", prog.P(), *strategy)
		fmt.Printf("! messages inserted:  %d\n", r.Messages)
		fmt.Printf("! guards inserted:    %d\n", r.Guards)
		fmt.Printf("! loop bounds reduced: %d\n", r.LoopsReduced)
		fmt.Printf("! remap calls placed: %d\n", r.Remaps)
		fmt.Printf("! procedures cloned:  %d\n", r.Cloned)
		if len(r.RuntimeProcs) > 0 {
			fmt.Printf("! run-time resolution: %v\n", r.RuntimeProcs)
		}
		for clone, orig := range prog.Clones() {
			fmt.Printf("! clone %s <- %s\n", clone, orig)
		}
	}
	if *explainText {
		ex.WriteText(os.Stderr)
	}
	if *explainJSON != "" {
		if err := writeJSONFile(*explainJSON, ex); err != nil {
			fmt.Fprintln(os.Stderr, "fdc: explain:", err)
			os.Exit(1)
		}
	}
	if *traceText {
		tr.WriteText(os.Stderr)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err == nil {
			if err = tr.WriteChrome(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdc: trace:", err)
			os.Exit(1)
		}
	}
}

func writeJSONFile(path string, ex *fortd.Explain) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ex.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
