package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fortd"
)

func newTestHandler(t *testing.T, cfg fortd.ServiceConfig) http.Handler {
	t.Helper()
	svc, err := fortd.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return newServer(svc, fortd.DefaultOptions())
}

func do(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	out := map[string]any{}
	if strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON: %v\n%s", method, path, err, w.Body.String())
		}
	}
	return w, out
}

func errKind(t *testing.T, out map[string]any) string {
	t.Helper()
	e, ok := out["error"].(map[string]any)
	if !ok {
		t.Fatalf("no structured error in %v", out)
	}
	kind, _ := e["kind"].(string)
	return kind
}

// TestDaemonCompileRunReport walks the primary flow over HTTP: compile
// jacobi, verify the listing is byte-identical to a direct library
// compile, run it by id, and fetch the HTML report.
func TestDaemonCompileRunReport(t *testing.T) {
	h := newTestHandler(t, fortd.ServiceConfig{})
	src := fortd.Jacobi1DSrc(64, 4, 4)

	w, out := do(t, h, "POST", "/compile", map[string]any{"session": "t", "source": src})
	if w.Code != http.StatusOK {
		t.Fatalf("compile status %d: %s", w.Code, w.Body.String())
	}
	id, _ := out["id"].(string)
	listing, _ := out["listing"].(string)
	if id == "" || listing == "" {
		t.Fatalf("compile response missing id/listing: %v", out)
	}
	direct, err := fortd.Compile(src, fortd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if listing != direct.Listing() {
		t.Fatal("daemon listing differs from direct library compile")
	}

	w, out = do(t, h, "POST", "/run", map[string]any{
		"session": "t", "id": id,
		"init": map[string][]float64{"a": fortd.Ramp(64)},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("run status %d: %s", w.Code, w.Body.String())
	}
	stats, _ := out["stats"].(map[string]any)
	if stats == nil || stats["time"].(float64) <= 0 {
		t.Fatalf("run response missing stats: %v", out)
	}

	w, _ = do(t, h, "GET", "/report/"+id, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("report status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("report content type %q", ct)
	}
	if !strings.Contains(w.Body.String(), "<html") {
		t.Fatal("report is not an HTML document")
	}
}

// TestDaemonErrors pins the structured error mapping: parse errors are
// 400 with positions, unknown ids 404, rate limiting 429, explicit
// kinds throughout.
func TestDaemonErrors(t *testing.T) {
	h := newTestHandler(t, fortd.ServiceConfig{})

	w, out := do(t, h, "POST", "/compile", map[string]any{"source": "PROGRAM ("})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("parse error status %d, want 400", w.Code)
	}
	if k := errKind(t, out); k != "parse" && k != "invalid" {
		t.Fatalf("parse error kind %q", k)
	}
	msg := out["error"].(map[string]any)["message"].(string)
	if !strings.Contains(msg, "line") {
		t.Fatalf("parse error lost its position: %q", msg)
	}

	w, out = do(t, h, "POST", "/run", map[string]any{"id": "no-such-id"})
	if w.Code != http.StatusNotFound || errKind(t, out) != "unknown-program" {
		t.Fatalf("unknown id -> %d %v", w.Code, out)
	}

	w, out = do(t, h, "GET", "/report/no-such-id", nil)
	if w.Code != http.StatusNotFound || errKind(t, out) != "unknown-program" {
		t.Fatalf("unknown report -> %d %v", w.Code, out)
	}

	w, out = do(t, h, "POST", "/compile", map[string]any{
		"source":  fortd.Fig1Src(32, 4),
		"options": map[string]any{"strategy": "bogus"},
	})
	if w.Code != http.StatusBadRequest || errKind(t, out) != "invalid" {
		t.Fatalf("bad strategy -> %d %v", w.Code, out)
	}
}

// TestDaemonRateLimit exhausts a session's bucket over HTTP and
// verifies the 429 with kind rate-limit, plus the /stats counter.
func TestDaemonRateLimit(t *testing.T) {
	h := newTestHandler(t, fortd.ServiceConfig{RateLimit: 0.001, RateBurst: 1})
	src := fortd.Fig1Src(32, 4)

	w, _ := do(t, h, "POST", "/compile", map[string]any{"session": "greedy", "source": src})
	if w.Code != http.StatusOK {
		t.Fatalf("first request status %d: %s", w.Code, w.Body.String())
	}
	w, out := do(t, h, "POST", "/compile", map[string]any{"session": "greedy", "source": src})
	if w.Code != http.StatusTooManyRequests || errKind(t, out) != "rate-limit" {
		t.Fatalf("second request -> %d %v", w.Code, out)
	}

	w, out = do(t, h, "GET", "/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats status %d", w.Code)
	}
	svc, _ := out["service"].(map[string]any)
	if svc == nil || svc["rateLimited"].(float64) != 1 {
		t.Fatalf("stats did not count the 429: %v", out)
	}
	cache, _ := out["cache"].(map[string]any)
	if cache == nil || cache["misses"].(float64) == 0 {
		t.Fatalf("stats missing cache counters: %v", out)
	}
}

// TestDaemonHealthz pins the liveness endpoint.
func TestDaemonHealthz(t *testing.T) {
	h := newTestHandler(t, fortd.ServiceConfig{})
	w, out := do(t, h, "GET", "/healthz", nil)
	if w.Code != http.StatusOK || out["ok"] != true {
		t.Fatalf("healthz -> %d %v", w.Code, out)
	}
}

// TestDaemonOptionOverlay verifies pointer-field DTO defaulting: an
// omitted option inherits the server's base, a present one overrides.
func TestDaemonOptionOverlay(t *testing.T) {
	h := newTestHandler(t, fortd.ServiceConfig{})
	src := fortd.Jacobi1DSrc(64, 2, 8) // n$proc = 8 in the source

	// Base options leave P=0 (read n$proc): expect 8.
	w, out := do(t, h, "POST", "/compile", map[string]any{"source": src})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if p := out["p"].(float64); p != 8 {
		t.Fatalf("default compile p = %v, want 8 from n$proc", p)
	}
	// Explicit override wins.
	w, out = do(t, h, "POST", "/compile", map[string]any{
		"source": src, "options": map[string]any{"p": 4},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if p := out["p"].(float64); p != 4 {
		t.Fatalf("override compile p = %v, want 4", p)
	}
}
