package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fortd"
	"fortd/internal/metrics"
)

func newTestHandler(t *testing.T, cfg fortd.ServiceConfig) http.Handler {
	h, _ := newTestServer(t, cfg, false)
	return h
}

// newTestServer builds a full daemon handler — registry, telemetry
// middleware, Service — around a quiet logger.
func newTestServer(t *testing.T, cfg fortd.ServiceConfig, pprofOn bool) (http.Handler, *telemetry) {
	t.Helper()
	reg := metrics.New()
	cfg.Metrics = reg
	svc, err := fortd.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	tel := newTelemetry(slog.New(slog.NewJSONHandler(io.Discard, nil)), reg)
	return newServer(svc, fortd.DefaultOptions(), tel, pprofOn), tel
}

func do(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	out := map[string]any{}
	if strings.HasPrefix(w.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON: %v\n%s", method, path, err, w.Body.String())
		}
	}
	return w, out
}

func errKind(t *testing.T, out map[string]any) string {
	t.Helper()
	e, ok := out["error"].(map[string]any)
	if !ok {
		t.Fatalf("no structured error in %v", out)
	}
	kind, _ := e["kind"].(string)
	return kind
}

// TestDaemonCompileRunReport walks the primary flow over HTTP: compile
// jacobi, verify the listing is byte-identical to a direct library
// compile, run it by id, and fetch the HTML report.
func TestDaemonCompileRunReport(t *testing.T) {
	h := newTestHandler(t, fortd.ServiceConfig{})
	src := fortd.Jacobi1DSrc(64, 4, 4)

	w, out := do(t, h, "POST", "/compile", map[string]any{"session": "t", "source": src})
	if w.Code != http.StatusOK {
		t.Fatalf("compile status %d: %s", w.Code, w.Body.String())
	}
	id, _ := out["id"].(string)
	listing, _ := out["listing"].(string)
	if id == "" || listing == "" {
		t.Fatalf("compile response missing id/listing: %v", out)
	}
	direct, err := fortd.Compile(src, fortd.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if listing != direct.Listing() {
		t.Fatal("daemon listing differs from direct library compile")
	}

	w, out = do(t, h, "POST", "/run", map[string]any{
		"session": "t", "id": id,
		"init": map[string][]float64{"a": fortd.Ramp(64)},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("run status %d: %s", w.Code, w.Body.String())
	}
	stats, _ := out["stats"].(map[string]any)
	if stats == nil || stats["time"].(float64) <= 0 {
		t.Fatalf("run response missing stats: %v", out)
	}

	w, _ = do(t, h, "GET", "/report/"+id, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("report status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("report content type %q", ct)
	}
	if !strings.Contains(w.Body.String(), "<html") {
		t.Fatal("report is not an HTML document")
	}
}

// TestDaemonErrors pins the structured error mapping: parse errors are
// 400 with positions, unknown ids 404, rate limiting 429, explicit
// kinds throughout.
func TestDaemonErrors(t *testing.T) {
	h := newTestHandler(t, fortd.ServiceConfig{})

	w, out := do(t, h, "POST", "/compile", map[string]any{"source": "PROGRAM ("})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("parse error status %d, want 400", w.Code)
	}
	if k := errKind(t, out); k != "parse" && k != "invalid" {
		t.Fatalf("parse error kind %q", k)
	}
	msg := out["error"].(map[string]any)["message"].(string)
	if !strings.Contains(msg, "line") {
		t.Fatalf("parse error lost its position: %q", msg)
	}

	w, out = do(t, h, "POST", "/run", map[string]any{"id": "no-such-id"})
	if w.Code != http.StatusNotFound || errKind(t, out) != "unknown-program" {
		t.Fatalf("unknown id -> %d %v", w.Code, out)
	}

	w, out = do(t, h, "GET", "/report/no-such-id", nil)
	if w.Code != http.StatusNotFound || errKind(t, out) != "unknown-program" {
		t.Fatalf("unknown report -> %d %v", w.Code, out)
	}

	w, out = do(t, h, "POST", "/compile", map[string]any{
		"source":  fortd.Fig1Src(32, 4),
		"options": map[string]any{"strategy": "bogus"},
	})
	if w.Code != http.StatusBadRequest || errKind(t, out) != "invalid" {
		t.Fatalf("bad strategy -> %d %v", w.Code, out)
	}
}

// TestDaemonRateLimit exhausts a session's bucket over HTTP and
// verifies the 429 with kind rate-limit, plus the /stats counter.
func TestDaemonRateLimit(t *testing.T) {
	h := newTestHandler(t, fortd.ServiceConfig{RateLimit: 0.001, RateBurst: 1})
	src := fortd.Fig1Src(32, 4)

	w, _ := do(t, h, "POST", "/compile", map[string]any{"session": "greedy", "source": src})
	if w.Code != http.StatusOK {
		t.Fatalf("first request status %d: %s", w.Code, w.Body.String())
	}
	w, out := do(t, h, "POST", "/compile", map[string]any{"session": "greedy", "source": src})
	if w.Code != http.StatusTooManyRequests || errKind(t, out) != "rate-limit" {
		t.Fatalf("second request -> %d %v", w.Code, out)
	}

	w, out = do(t, h, "GET", "/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats status %d", w.Code)
	}
	svc, _ := out["service"].(map[string]any)
	if svc == nil || svc["rateLimited"].(float64) != 1 {
		t.Fatalf("stats did not count the 429: %v", out)
	}
	cache, _ := out["cache"].(map[string]any)
	if cache == nil || cache["misses"].(float64) == 0 {
		t.Fatalf("stats missing cache counters: %v", out)
	}
}

// TestDaemonHealthz pins the liveness endpoint.
func TestDaemonHealthz(t *testing.T) {
	h := newTestHandler(t, fortd.ServiceConfig{})
	w, out := do(t, h, "GET", "/healthz", nil)
	if w.Code != http.StatusOK || out["ok"] != true {
		t.Fatalf("healthz -> %d %v", w.Code, out)
	}
}

// scrape parses the daemon's /metrics rendering.
func scrape(t *testing.T, h http.Handler) *metrics.Snapshot {
	t.Helper()
	w, _ := do(t, h, "GET", "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	snap, err := metrics.ParseText(w.Body)
	if err != nil {
		t.Fatalf("metrics did not parse: %v", err)
	}
	return snap
}

// TestDaemonMetricsEndpoint drives compile (twice, for a cache hit)
// and run traffic, then checks /metrics covers the service, cache,
// pool and HTTP layers with consistent counts.
func TestDaemonMetricsEndpoint(t *testing.T) {
	h, _ := newTestServer(t, fortd.ServiceConfig{}, false)
	src := fortd.Jacobi1DSrc(64, 4, 4)

	for i := 0; i < 2; i++ {
		if w, _ := do(t, h, "POST", "/compile", map[string]any{"session": "m", "source": src}); w.Code != http.StatusOK {
			t.Fatalf("compile %d status %d", i, w.Code)
		}
	}
	if w, _ := do(t, h, "POST", "/run", map[string]any{"session": "m", "source": src, "init": map[string][]float64{"a": fortd.Ramp(64)}}); w.Code != http.StatusOK {
		t.Fatalf("run status %d", w.Code)
	}
	do(t, h, "POST", "/compile", map[string]any{"session": "m", "source": "PROGRAM ("}) // a 400, for the status labels

	snap := scrape(t, h)
	for _, fam := range []string{
		"fdd_compiles_total", "fdd_runs_total", "fdd_rejected_total",
		"fdd_compile_seconds", "fdd_run_seconds",
		"fdd_queue_depth", "fdd_pool_inflight", "fdd_pool_workers", "fdd_pool_saturation",
		"fdd_cache_hits_total", "fdd_cache_misses_total", "fdd_cache_entries",
		"fdd_http_requests_total", "fdd_http_request_seconds",
		"fdd_process_uptime_seconds", "fdd_process_goroutines", "fdd_ready",
	} {
		if _, ok := snap.Families[fam]; !ok {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}
	if got := snap.Value("fdd_compiles_total", "outcome", "ok"); got != 2 {
		t.Errorf("compiles ok = %v, want 2", got)
	}
	if got := snap.Value("fdd_compiles_total", "outcome", "error"); got != 1 {
		t.Errorf("compiles error = %v, want 1", got)
	}
	// The run carried inline source: one run request, not a compile.
	if got := snap.Value("fdd_runs_total", "outcome", "ok"); got != 1 {
		t.Errorf("runs ok = %v, want 1", got)
	}
	if hits := snap.Value("fdd_cache_hits_total"); hits == 0 {
		t.Error("warm recompile produced no cache hits")
	}
	// Latency histograms count one observation per service request.
	if c, n := snap.Value("fdd_compile_seconds_count"), snap.Value("fdd_compiles_total"); c != n {
		t.Errorf("compile histogram count %v != compiles_total %v", c, n)
	}
	if c, n := snap.Value("fdd_run_seconds_count"), snap.Value("fdd_runs_total"); c != n {
		t.Errorf("run histogram count %v != runs_total %v", c, n)
	}
	// HTTP layer: 3 ok + 1 parse failure on /compile.
	if got := snap.Value("fdd_http_requests_total", "route", "/compile", "status", "200"); got != 2 {
		t.Errorf("http /compile 200 = %v, want 2", got)
	}
	if got := snap.Value("fdd_http_requests_total", "route", "/compile", "status", "400"); got != 1 {
		t.Errorf("http /compile 400 = %v, want 1", got)
	}
	if c, n := snap.Value("fdd_http_request_seconds_count", "route", "/compile"), snap.Value("fdd_http_requests_total", "route", "/compile"); c != n {
		t.Errorf("http histogram count %v != requests %v", c, n)
	}
}

// TestDaemonStatsMetricsAgree cross-checks /stats against /metrics:
// the two views are fed by the same live state, so the stable numbers
// must match exactly.
func TestDaemonStatsMetricsAgree(t *testing.T) {
	h, _ := newTestServer(t, fortd.ServiceConfig{Workers: 3}, false)
	src := fortd.Jacobi1DSrc(64, 4, 4)
	for i := 0; i < 2; i++ {
		if w, _ := do(t, h, "POST", "/compile", map[string]any{"session": "x", "source": src}); w.Code != http.StatusOK {
			t.Fatalf("compile status %d", w.Code)
		}
	}

	w, out := do(t, h, "GET", "/stats", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats status %d", w.Code)
	}
	snap := scrape(t, h)
	svc := out["service"].(map[string]any)
	cache := out["cache"].(map[string]any)
	proc := out["process"].(map[string]any)
	for _, tc := range []struct {
		stats  float64
		metric float64
		name   string
	}{
		{svc["queued"].(float64), snap.Value("fdd_queue_depth"), "queue depth"},
		{svc["queueDepth"].(float64), snap.Value("fdd_queue_limit"), "queue limit"},
		{svc["inFlight"].(float64), snap.Value("fdd_pool_inflight"), "inflight"},
		{svc["workers"].(float64), snap.Value("fdd_pool_workers"), "workers"},
		{svc["sessions"].(float64), snap.Value("fdd_sessions"), "sessions"},
		{svc["programs"].(float64), snap.Value("fdd_programs"), "programs"},
		{cache["hits"].(float64), snap.Value("fdd_cache_hits_total"), "cache hits (memory+disk)"},
		{cache["misses"].(float64), snap.Value("fdd_cache_misses_total"), "cache misses"},
		{cache["entries"].(float64), snap.Value("fdd_cache_entries", "tier", "memory"), "cache entries"},
	} {
		if tc.stats != tc.metric {
			t.Errorf("%s: /stats says %v, /metrics says %v", tc.name, tc.stats, tc.metric)
		}
	}
	if proc["uptimeSeconds"].(float64) <= 0 || snap.Value("fdd_process_uptime_seconds") <= 0 {
		t.Error("uptime not positive in both views")
	}
	if proc["goroutines"].(float64) <= 0 || snap.Value("fdd_process_goroutines") <= 0 {
		t.Error("goroutine count not positive in both views")
	}
}

// TestDaemonRetryAfterAndRequestID pins the 429 contract: an honest
// Retry-After from the token-bucket refill, and the request id in the
// response header and the structured error detail (propagated when
// the client sent one, generated otherwise).
func TestDaemonRetryAfterAndRequestID(t *testing.T) {
	h, _ := newTestServer(t, fortd.ServiceConfig{RateLimit: 0.5, RateBurst: 1}, false)
	src := fortd.Fig1Src(32, 4)

	if w, _ := do(t, h, "POST", "/compile", map[string]any{"session": "g", "source": src}); w.Code != http.StatusOK {
		t.Fatalf("first request status %d", w.Code)
	}
	req := httptest.NewRequest("POST", "/compile", strings.NewReader(`{"session":"g","source":"x"}`))
	req.Header.Set("X-Request-ID", "trace-me-1234")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", w.Code)
	}
	ra := w.Header().Get("Retry-After")
	if ra == "" {
		t.Fatal("429 missing Retry-After")
	}
	// 0.5 req/s means a fresh token takes ~2s: Retry-After in [1, 3].
	if ra != "1" && ra != "2" && ra != "3" {
		t.Errorf("Retry-After = %q, want ~2s for a 0.5 req/s bucket", ra)
	}
	if got := w.Header().Get("X-Request-ID"); got != "trace-me-1234" {
		t.Errorf("X-Request-ID = %q, not propagated", got)
	}
	var out map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	detail := out["error"].(map[string]any)["detail"].(map[string]any)
	if detail["requestId"] != "trace-me-1234" {
		t.Errorf("error detail requestId = %v", detail["requestId"])
	}
	if detail["retryAfterSeconds"].(float64) <= 0 {
		t.Errorf("error detail retryAfterSeconds = %v", detail["retryAfterSeconds"])
	}

	// Without a client-supplied id the daemon generates one, and every
	// error detail carries it.
	w2, out2 := do(t, h, "POST", "/run", map[string]any{"id": "no-such-id"})
	if id := w2.Header().Get("X-Request-ID"); len(id) != 16 {
		t.Errorf("generated X-Request-ID = %q, want 16 hex chars", id)
	}
	detail2 := out2["error"].(map[string]any)["detail"].(map[string]any)
	if detail2["requestId"] != w2.Header().Get("X-Request-ID") {
		t.Errorf("error detail requestId %v != header %q", detail2["requestId"], w2.Header().Get("X-Request-ID"))
	}
}

// TestDaemonReadyzDrain pins the probe split: /livez stays 200 while
// /readyz flips to 503 once draining begins (and fdd_ready tracks it).
func TestDaemonReadyzDrain(t *testing.T) {
	h, tel := newTestServer(t, fortd.ServiceConfig{}, false)
	if w, out := do(t, h, "GET", "/readyz", nil); w.Code != http.StatusOK || out["ready"] != true {
		t.Fatalf("readyz -> %d %v", w.Code, out)
	}
	if snap := scrape(t, h); snap.Value("fdd_ready") != 1 {
		t.Error("fdd_ready != 1 while serving")
	}
	tel.ready.Store(false)
	if w, out := do(t, h, "GET", "/readyz", nil); w.Code != http.StatusServiceUnavailable || out["ready"] != false {
		t.Fatalf("draining readyz -> %d %v", w.Code, out)
	}
	if w, _ := do(t, h, "GET", "/livez", nil); w.Code != http.StatusOK {
		t.Fatalf("livez during drain -> %d, want 200", w.Code)
	}
	if snap := scrape(t, h); snap.Value("fdd_ready") != 0 {
		t.Error("fdd_ready != 0 while draining")
	}
}

// TestDaemonPprofGate pins that the profiling surface is opt-in.
func TestDaemonPprofGate(t *testing.T) {
	off, _ := newTestServer(t, fortd.ServiceConfig{}, false)
	if w, _ := do(t, off, "GET", "/debug/pprof/", nil); w.Code != http.StatusNotFound {
		t.Errorf("pprof without -pprof -> %d, want 404", w.Code)
	}
	on, _ := newTestServer(t, fortd.ServiceConfig{}, true)
	if w, _ := do(t, on, "GET", "/debug/pprof/", nil); w.Code != http.StatusOK {
		t.Errorf("pprof with -pprof -> %d, want 200", w.Code)
	}
}

// TestDaemonOptionOverlay verifies pointer-field DTO defaulting: an
// omitted option inherits the server's base, a present one overrides.
func TestDaemonOptionOverlay(t *testing.T) {
	h := newTestHandler(t, fortd.ServiceConfig{})
	src := fortd.Jacobi1DSrc(64, 2, 8) // n$proc = 8 in the source

	// Base options leave P=0 (read n$proc): expect 8.
	w, out := do(t, h, "POST", "/compile", map[string]any{"source": src})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if p := out["p"].(float64); p != 8 {
		t.Fatalf("default compile p = %v, want 8 from n$proc", p)
	}
	// Explicit override wins.
	w, out = do(t, h, "POST", "/compile", map[string]any{
		"source": src, "options": map[string]any{"p": 4},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if p := out["p"].(float64); p != 4 {
		t.Fatalf("override compile p = %v, want 4", p)
	}
}

// TestDaemonProfileRoundTrip drives the profile surface end to end:
// POST /run?profile=true returns a profileId, GET /profile/{id} serves
// the canonical artifact bytes, GET /profiles lists it (with the
// ?program= filter), and a handler over a fresh Service sharing the
// same ProfileDir (a daemon restart) still serves the artifact.
func TestDaemonProfileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := newTestHandler(t, fortd.ServiceConfig{ProfileDir: dir})
	src := fortd.Jacobi1DSrc(64, 2, 4)
	init := map[string][]float64{"a": fortd.Ramp(64)}

	w, out := do(t, h, "POST", "/run?profile=true", map[string]any{
		"session": "t", "source": src, "init": init, "workload": "jacobi1d",
	})
	if w.Code != http.StatusOK {
		t.Fatalf("run status %d: %s", w.Code, w.Body.String())
	}
	profileID, _ := out["profileId"].(string)
	if len(profileID) != 64 {
		t.Fatalf("run response profileId = %q, want 64-hex id", profileID)
	}
	programID, _ := out["id"].(string)

	// a run without the flag must not attach a profile
	w, out = do(t, h, "POST", "/run", map[string]any{"session": "t", "source": src, "init": init})
	if w.Code != http.StatusOK {
		t.Fatalf("plain run status %d", w.Code)
	}
	if id, ok := out["profileId"]; ok {
		t.Errorf("unprofiled run returned profileId %v", id)
	}

	w, out = do(t, h, "GET", "/profile/"+profileID, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("profile fetch status %d: %s", w.Code, w.Body.String())
	}
	if s, _ := out["schema"].(float64); s != 1 {
		t.Errorf("artifact schema = %v, want 1", out["schema"])
	}
	meta, _ := out["meta"].(map[string]any)
	if meta == nil || meta["workload"] != "jacobi1d" || meta["program_hash"] != programID {
		t.Errorf("artifact meta = %v", meta)
	}
	body := w.Body.String()

	w, _ = do(t, h, "GET", "/profiles", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), profileID) {
		t.Errorf("profile list (%d) lacks %s: %s", w.Code, profileID, w.Body.String())
	}
	w, _ = do(t, h, "GET", "/profiles?program="+programID, nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), profileID) {
		t.Errorf("filtered profile list lacks %s", profileID)
	}
	w, _ = do(t, h, "GET", "/profiles?program=feedfacefeedface", nil)
	if w.Code != http.StatusOK || strings.Contains(w.Body.String(), profileID) {
		t.Errorf("mismatched program filter still lists %s", profileID)
	}

	w, out = do(t, h, "GET", "/profile/"+strings.Repeat("0", 64), nil)
	if w.Code != http.StatusNotFound || errKind(t, out) != "unknown-profile" {
		t.Errorf("unknown profile -> %d %v", w.Code, out)
	}

	// restart: a fresh handler over the same directory serves identical bytes
	h2 := newTestHandler(t, fortd.ServiceConfig{ProfileDir: dir})
	w, _ = do(t, h2, "GET", "/profile/"+profileID, nil)
	if w.Code != http.StatusOK || w.Body.String() != body {
		t.Errorf("restarted daemon serves different artifact (status %d)", w.Code)
	}
}
