package main

// HTTP/JSON transport for fortd.Service: request decoding, option
// defaulting, and the mapping from the library's typed errors onto
// status codes and structured JSON error bodies. Handlers hold no
// state beyond the Service — everything shareable (summary cache,
// worker pool, rate limits, program table) lives there.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"fortd"
	"fortd/internal/metrics"
	"fortd/internal/profile"
	"fortd/internal/report"
)

// optionsDTO is the wire form of fortd.Options: pointer fields so
// omitted values inherit the server's base options.
type optionsDTO struct {
	P          *int    `json:"p,omitempty"`
	Strategy   *string `json:"strategy,omitempty"` // interproc | runtime | immediate
	Remap      *string `json:"remap,omitempty"`    // none | live | hoist | kills
	CloneLimit *int    `json:"cloneLimit,omitempty"`
	Jobs       *int    `json:"jobs,omitempty"`
}

// apply overlays the DTO onto base.
func (d *optionsDTO) apply(base fortd.Options) (fortd.Options, error) {
	if d == nil {
		return base, nil
	}
	if d.P != nil {
		base.P = *d.P
	}
	if d.Strategy != nil {
		switch *d.Strategy {
		case "interproc":
			base.Strategy = fortd.Interprocedural
		case "runtime":
			base.Strategy = fortd.RuntimeResolution
		case "immediate":
			base.Strategy = fortd.Immediate
		default:
			return base, fmt.Errorf("unknown strategy %q (want interproc, runtime or immediate)", *d.Strategy)
		}
	}
	if d.Remap != nil {
		switch *d.Remap {
		case "none":
			base.RemapOpt = fortd.RemapNone
		case "live":
			base.RemapOpt = fortd.RemapLive
		case "hoist":
			base.RemapOpt = fortd.RemapHoist
		case "kills":
			base.RemapOpt = fortd.RemapKills
		default:
			return base, fmt.Errorf("unknown remap level %q (want none, live, hoist or kills)", *d.Remap)
		}
	}
	if d.CloneLimit != nil {
		base.CloneLimit = *d.CloneLimit
	}
	if d.Jobs != nil {
		base.Jobs = *d.Jobs
	}
	return base, nil
}

type compileDTO struct {
	Session string      `json:"session"`
	Source  string      `json:"source"`
	Options *optionsDTO `json:"options,omitempty"`
	Explain bool        `json:"explain,omitempty"`
}

type runDTO struct {
	Session     string               `json:"session"`
	ID          string               `json:"id,omitempty"`
	Source      string               `json:"source,omitempty"`
	Options     *optionsDTO          `json:"options,omitempty"`
	Init        map[string][]float64 `json:"init,omitempty"`
	InitScalars map[string]float64   `json:"initScalars,omitempty"`
	Reference   bool                 `json:"reference,omitempty"`
	// Profile stores a profile artifact for the run (also settable via
	// the ?profile=true query parameter); Workload labels it.
	Profile  bool   `json:"profile,omitempty"`
	Workload string `json:"workload,omitempty"`
}

// errorBody is the structured JSON error every endpoint returns: Kind
// is machine-readable, Message carries the library's diagnostic
// (parse errors keep their "line N:" positions, deadlock reports their
// per-processor attribution).
type errorBody struct {
	Kind    string         `json:"kind"`
	Message string         `json:"message"`
	Detail  map[string]any `json:"detail,omitempty"`
}

// classify maps a library error onto (status, structured body).
func classify(err error) (int, errorBody) {
	switch {
	case errors.Is(err, fortd.ErrRateLimited):
		return http.StatusTooManyRequests, errorBody{Kind: "rate-limit", Message: err.Error()}
	case errors.Is(err, fortd.ErrOverloaded):
		return http.StatusServiceUnavailable, errorBody{Kind: "overloaded", Message: err.Error()}
	case errors.Is(err, fortd.ErrServiceClosed):
		return http.StatusServiceUnavailable, errorBody{Kind: "closed", Message: err.Error()}
	case errors.Is(err, fortd.ErrUnknownProgram):
		return http.StatusNotFound, errorBody{Kind: "unknown-program", Message: err.Error()}
	case errors.Is(err, fortd.ErrUnknownProfile):
		return http.StatusNotFound, errorBody{Kind: "unknown-profile", Message: err.Error()}
	case errors.Is(err, context.Canceled):
		// the client went away; 499 in the nginx tradition
		return 499, errorBody{Kind: "cancelled", Message: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, errorBody{Kind: "deadline", Message: err.Error()}
	}
	var dl *fortd.DeadlockError
	if errors.As(err, &dl) {
		return http.StatusUnprocessableEntity, errorBody{
			Kind: "deadlock", Message: err.Error(),
			Detail: map[string]any{"deadline": dl.Deadline, "blocked": len(dl.Blocked), "live": dl.Live},
		}
	}
	var ab *fortd.AbortError
	if errors.As(err, &ab) {
		return http.StatusUnprocessableEntity, errorBody{
			Kind: "abort", Message: err.Error(),
			Detail: map[string]any{"pid": ab.PID, "origin": ab.Origin, "op": ab.Op},
		}
	}
	var cg *fortd.CongestionError
	if errors.As(err, &cg) {
		return http.StatusUnprocessableEntity, errorBody{
			Kind: "congestion", Message: err.Error(),
			Detail: map[string]any{"src": cg.Src, "dst": cg.Dst},
		}
	}
	msg := err.Error()
	if strings.HasPrefix(msg, "line ") || strings.HasPrefix(msg, "parser:") {
		return http.StatusBadRequest, errorBody{Kind: "parse", Message: msg}
	}
	return http.StatusBadRequest, errorBody{Kind: "invalid", Message: msg}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// writeError renders a library error as the structured JSON body. The
// request id travels in every error's detail (and the X-Request-ID
// response header, set by the middleware) so a client error report
// pins the matching daemon log line; rate-limit errors additionally
// carry an honest Retry-After derived from the token-bucket refill.
func writeError(w http.ResponseWriter, r *http.Request, err error) {
	inner := err
	var req *fortd.RequestError
	if errors.As(err, &req) {
		inner = req.Err
	}
	status, body := classify(inner)
	if id := fortd.RequestIDFrom(r.Context()); id != "" {
		if body.Detail == nil {
			body.Detail = map[string]any{}
		}
		body.Detail["requestId"] = id
	}
	var rl *fortd.RateLimitError
	if errors.As(err, &rl) {
		secs := int(math.Ceil(rl.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		if body.Detail == nil {
			body.Detail = map[string]any{}
		}
		body.Detail["retryAfterSeconds"] = secs
	}
	writeJSON(w, status, map[string]any{"error": body})
}

// server binds a Service to the HTTP mux.
type server struct {
	svc  *fortd.Service
	base fortd.Options
	tel  *telemetry
}

// newServer builds the daemon's handler tree wrapped in the telemetry
// middleware. pprofOn additionally mounts net/http/pprof under
// /debug/pprof (off by default: the profiling surface leaks heap and
// command-line contents, so it is strictly opt-in).
func newServer(svc *fortd.Service, base fortd.Options, tel *telemetry, pprofOn bool) http.Handler {
	s := &server{svc: svc, base: base, tel: tel}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", s.handleCompile)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /report/{id}", s.handleReport)
	mux.HandleFunc("GET /profile/{id}", s.handleProfile)
	mux.HandleFunc("GET /profiles", s.handleProfiles)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /livez", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return tel.wrap(mux)
}

// remarkDTO flattens a fortd.Remark for the wire.
type remarkDTO struct {
	Kind string `json:"kind"`
	Pass string `json:"pass"`
	Proc string `json:"proc,omitempty"`
	Line int    `json:"line,omitempty"`
	Name string `json:"name"`
	Msg  string `json:"msg"`
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req compileDTO
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, fmt.Errorf("bad request body: %w", err))
		return
	}
	opts, err := req.Options.apply(s.base)
	if err != nil {
		writeError(w, r, err)
		return
	}
	res, err := s.svc.Compile(r.Context(), fortd.CompileRequest{
		Session: req.Session, Source: req.Source, Options: opts, Explain: req.Explain,
	})
	if err != nil {
		writeError(w, r, err)
		return
	}
	body := map[string]any{
		"id":          res.ID,
		"p":           res.Program.P(),
		"listing":     res.Listing,
		"report":      res.Report.String(),
		"cacheHits":   res.CacheHits,
		"cacheMisses": res.CacheMisses,
	}
	if req.Explain {
		remarks := make([]remarkDTO, 0, len(res.Remarks))
		for _, rm := range res.Remarks {
			remarks = append(remarks, remarkDTO{
				Kind: rm.Kind.String(), Pass: rm.Pass, Proc: rm.Proc,
				Line: rm.Line, Name: rm.Name, Msg: rm.Msg,
			})
		}
		body["remarks"] = remarks
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runDTO
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, fmt.Errorf("bad request body: %w", err))
		return
	}
	opts, err := req.Options.apply(s.base)
	if err != nil {
		writeError(w, r, err)
		return
	}
	if r.URL.Query().Get("profile") == "true" {
		req.Profile = true
	}
	out, err := s.svc.Run(r.Context(), fortd.RunRequest{
		Session: req.Session, ID: req.ID, Source: req.Source, Options: opts,
		Init: req.Init, InitScalars: req.InitScalars, Reference: req.Reference,
		Profile: req.Profile, Workload: req.Workload,
	})
	if err != nil {
		writeError(w, r, err)
		return
	}
	st := out.Result.Stats
	body := map[string]any{
		"id": out.ID,
		"stats": map[string]any{
			"time":     st.Time,
			"messages": st.Messages,
			"words":    st.Words,
			"flops":    st.Flops,
			"remaps":   st.Remaps,
			"summary":  st.String(),
		},
		"arrays": out.Result.Arrays,
	}
	if out.ProfileID != "" {
		body["profileId"] = out.ProfileID
	}
	writeJSON(w, http.StatusOK, body)
}

// handleProfile serves a stored profile artifact's canonical bytes —
// exactly what fdprof reads from a store directory, so curl output
// diffs cleanly against local artifacts.
func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	p, err := s.svc.Profile(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	p.Encode(w)
}

// handleProfiles lists the stored profiles; ?program= filters by
// program content hash.
func (s *server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	list, err := s.svc.Profiles()
	if err != nil {
		writeError(w, r, err)
		return
	}
	if want := r.URL.Query().Get("program"); want != "" {
		kept := list[:0]
		for _, e := range list {
			if e.Meta.ProgramHash == want {
				kept = append(kept, e)
			}
		}
		list = kept
	}
	if list == nil {
		list = []profile.Entry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"profiles": list})
}

func (s *server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	src, opts, _, err := s.svc.Lookup(id)
	if err != nil {
		writeError(w, r, err)
		return
	}
	// the report recompiles traced; route it through the shared cache
	// so the phase-3 work is served warm
	opts.Cache = s.svc.Cache()
	sec, err := report.BuildSection(id[:12], src, nil, opts, nil)
	if err != nil {
		writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := report.Write(w, "fdd compile report", "program "+id, sec); err != nil {
		// headers are gone; nothing useful left to send
		return
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "time": time.Now().UTC().Format(time.RFC3339)})
}

// handleReadyz is the readiness probe: it flips to 503 once the
// daemon starts draining so load balancers stop routing new work
// while in-flight requests finish.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.tel.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// handleMetrics renders the registry in the Prometheus text format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	s.tel.reg.WriteText(w)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.svc.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"service": st,
		"process": map[string]any{
			"startTime":     s.tel.start.UTC().Format(time.RFC3339),
			"uptimeSeconds": time.Since(s.tel.start).Seconds(),
			"goroutines":    runtime.NumGoroutine(),
		},
		"cache": map[string]any{
			"hits":        st.Cache.Hits,
			"misses":      st.Cache.Misses,
			"hitRate":     st.Cache.HitRate(),
			"entries":     st.Cache.Entries,
			"diskHits":    st.Cache.DiskHits,
			"diskEntries": st.Cache.DiskEntries,
			"dir":         st.Cache.Dir,
		},
	})
}
