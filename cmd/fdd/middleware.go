package main

// Cross-cutting request telemetry for the daemon: every handler is
// wrapped with (1) a generated-or-propagated X-Request-ID stored in
// the context (fortd.WithRequestID) so the Service tags its failures
// with it, (2) one structured JSON log line per request, and (3)
// per-endpoint request/status counters and latency histograms. The
// route label is normalized from a fixed set so a hostile client
// cannot explode metric cardinality with arbitrary paths.

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fortd"
	"fortd/internal/metrics"
)

// telemetry is the daemon's observability state: the metrics registry
// backing /metrics, the structured logger, the readiness flag flipped
// during drain, and the process start time behind /stats uptime.
type telemetry struct {
	log   *slog.Logger
	reg   *metrics.Registry
	start time.Time
	ready atomic.Bool

	requests *metrics.CounterVec   // route, method, status
	latency  *metrics.HistogramVec // route
}

// newTelemetry builds the daemon's telemetry and registers the
// HTTP-layer and process-level families.
func newTelemetry(logger *slog.Logger, reg *metrics.Registry) *telemetry {
	t := &telemetry{log: logger, reg: reg, start: time.Now()}
	t.ready.Store(true)
	t.requests = reg.CounterVec("fdd_http_requests_total", "HTTP requests by route, method and status.", "route", "method", "status")
	t.latency = reg.HistogramVec("fdd_http_request_seconds", "HTTP request latency by route.", nil, "route")
	reg.GaugeFunc("fdd_process_uptime_seconds", "Seconds since the daemon started.",
		func() float64 { return time.Since(t.start).Seconds() })
	reg.GaugeFunc("fdd_process_goroutines", "Live goroutines in the daemon process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("fdd_ready", "1 while serving, 0 once draining (mirrors /readyz).",
		func() float64 {
			if t.ready.Load() {
				return 1
			}
			return 0
		})
	return t
}

// routeLabel maps a request path onto its metrics label. Unknown
// paths collapse into "other".
func routeLabel(path string) string {
	switch {
	case strings.HasPrefix(path, "/report/"):
		return "/report/{id}"
	case strings.HasPrefix(path, "/profile/"):
		return "/profile/{id}"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "/debug/pprof"
	}
	switch path {
	case "/compile", "/run", "/healthz", "/livez", "/readyz", "/stats", "/metrics", "/profiles":
		return path
	}
	return "other"
}

// newRequestID returns a fresh 16-hex-char request id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the process is in serious trouble;
		// a constant id keeps requests serviceable and greppable.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status and body size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// wrap is the outermost handler: request-id propagation, structured
// access logging, and per-endpoint metrics.
func (t *telemetry) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(fortd.WithRequestID(r.Context(), id)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		route := routeLabel(r.URL.Path)
		t.requests.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
		t.latency.With(route).Observe(elapsed.Seconds())
		level := slog.LevelInfo
		if sw.status >= 500 {
			level = slog.LevelWarn
		}
		t.log.LogAttrs(r.Context(), level, "request",
			slog.String("id", id),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", sw.status),
			slog.Int("bytes", sw.bytes),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	})
}
