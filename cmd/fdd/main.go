// Command fdd is the Fortran D compile daemon: it serves compilations
// and simulated runs over HTTP/JSON from one process-wide fortd.Service,
// so every request shares the summary cache (optionally disk-persisted
// across restarts), the bounded worker pool and per-session rate limits.
//
// Endpoints:
//
//	POST /compile      {"session","source","options":{...},"explain"}
//	POST /run          {"session","id"|"source","init","reference"};
//	                   ?profile=true (or "profile":true) stores a
//	                   profile artifact and returns its profileId
//	GET  /report/{id}  HTML performance report for a compiled program
//	GET  /profile/{id} stored profile artifact (canonical JSON bytes)
//	GET  /profiles     stored-profile listing; ?program= filters by hash
//	GET  /healthz      liveness (also GET /livez)
//	GET  /readyz       readiness; 503 once the daemon is draining
//	GET  /stats        service + cache + process counters (JSON)
//	GET  /metrics      Prometheus text exposition of the same telemetry
//	GET  /debug/pprof  net/http/pprof profiling (only with -pprof)
//
// Errors are structured JSON ({"error":{"kind","message","detail"}})
// carrying the library's typed errors: parse errors keep their line
// positions, deadlock and abort reports their per-processor detail,
// and rate-limit/overload map onto 429/503 (429s carry a Retry-After
// derived from the token-bucket refill). Every request gets a
// generated-or-propagated X-Request-ID, echoed in the response
// header, logged in the per-request JSON log line, and included in
// every error's detail.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fortd"
	"fortd/internal/metrics"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8700", "listen address")
		cacheDir    = flag.String("cache-dir", "", "disk-persist the summary cache under this directory")
		profileDir  = flag.String("profile-dir", "", "persist run-profile artifacts under this directory (empty: in-memory only)")
		workers     = flag.Int("workers", 0, "max concurrently executing requests (0: GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "max requests waiting for a worker (0: 4x workers)")
		rate        = flag.Float64("rate", 0, "per-session sustained requests/sec (0: unlimited)")
		burst       = flag.Int("burst", 0, "per-session burst capacity (0: 2x rate)")
		compileWall = flag.Duration("compile-deadline", 0, "per-compile wall-clock bound (0: none)")
		runWall     = flag.Duration("run-deadline", 10*time.Second, "per-run wall-clock bound (0: none)")
		jobs        = flag.Int("jobs", 0, "phase-3 workers per compile (0: serial)")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof (opt-in; leaks process internals)")
		drain       = flag.Duration("drain", 2*time.Second, "hold /readyz at 503 this long before shutdown on SIGINT/SIGTERM")
		logLevel    = flag.String("log-level", "info", "structured log level: debug, info, warn or error")
		overlap     = flag.Bool("overlap", true, "compile with the communication-overlap schedule by default (requests may override Options)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "fdd: bad -log-level:", err)
		os.Exit(1)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	reg := metrics.New()
	base := fortd.DefaultOptions().WithOverlap(*overlap)
	base.Jobs = *jobs
	cfg := fortd.ServiceConfig{
		Options:     withDeadline(base, *compileWall),
		CacheDir:    *cacheDir,
		ProfileDir:  *profileDir,
		Workers:     *workers,
		QueueDepth:  *queue,
		RateLimit:   *rate,
		RateBurst:   *burst,
		RunDeadline: *runWall,
		Metrics:     reg,
	}
	svc, err := fortd.NewService(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdd:", err)
		os.Exit(1)
	}
	defer svc.Close()

	tel := newTelemetry(logger, reg)
	if dir := svc.Cache().Stats().Dir; dir != "" {
		logger.Info("summary cache persisted", "dir", dir)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(svc, base, tel, *pprofOn),
		ReadHeaderTimeout: 10 * time.Second,
	}
	logger.Info("listening", "addr", "http://"+*addr, "pprof", *pprofOn)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: fail readiness so load balancers stop sending work, give
	// them a beat to notice, then shut down (waiting for in-flight
	// requests) and close the service.
	tel.ready.Store(false)
	logger.Info("draining", "delay", *drain)
	time.Sleep(*drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("shutdown incomplete", "err", err)
	}
	logger.Info("stopped")
}

func withDeadline(o fortd.Options, d time.Duration) fortd.Options {
	o.Deadline = d
	return o
}
