// Command fdd is the Fortran D compile daemon: it serves compilations
// and simulated runs over HTTP/JSON from one process-wide fortd.Service,
// so every request shares the summary cache (optionally disk-persisted
// across restarts), the bounded worker pool and per-session rate limits.
//
// Endpoints:
//
//	POST /compile      {"session","source","options":{...},"explain"}
//	POST /run          {"session","id"|"source","init","reference"}
//	GET  /report/{id}  HTML performance report for a compiled program
//	GET  /healthz      liveness
//	GET  /stats        service + cache counters
//
// Errors are structured JSON ({"error":{"kind","message","detail"}})
// carrying the library's typed errors: parse errors keep their line
// positions, deadlock and abort reports their per-processor detail,
// and rate-limit/overload map onto 429/503.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"fortd"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:8700", "listen address")
		cacheDir    = flag.String("cache-dir", "", "disk-persist the summary cache under this directory")
		workers     = flag.Int("workers", 0, "max concurrently executing requests (0: GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "max requests waiting for a worker (0: 4x workers)")
		rate        = flag.Float64("rate", 0, "per-session sustained requests/sec (0: unlimited)")
		burst       = flag.Int("burst", 0, "per-session burst capacity (0: 2x rate)")
		compileWall = flag.Duration("compile-deadline", 0, "per-compile wall-clock bound (0: none)")
		runWall     = flag.Duration("run-deadline", 10*time.Second, "per-run wall-clock bound (0: none)")
		jobs        = flag.Int("jobs", 0, "phase-3 workers per compile (0: serial)")
	)
	flag.Parse()

	base := fortd.DefaultOptions()
	base.Jobs = *jobs
	cfg := fortd.ServiceConfig{
		Options:     withDeadline(base, *compileWall),
		CacheDir:    *cacheDir,
		Workers:     *workers,
		QueueDepth:  *queue,
		RateLimit:   *rate,
		RateBurst:   *burst,
		RunDeadline: *runWall,
	}
	svc, err := fortd.NewService(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdd:", err)
		os.Exit(1)
	}
	defer svc.Close()

	log.SetPrefix("fdd: ")
	log.SetFlags(log.LstdFlags)
	if dir := svc.Cache().Stats().Dir; dir != "" {
		log.Printf("summary cache persisted under %s", dir)
	}
	log.Printf("listening on http://%s", *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(svc, base),
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}

func withDeadline(o fortd.Options, d time.Duration) fortd.Options {
	o.Deadline = d
	return o
}
