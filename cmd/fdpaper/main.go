// Command fdpaper regenerates every measurable table and figure of the
// paper's evaluation: the Figure 2-vs-3 compile-time/run-time gap, the
// Figure 10-vs-12 delayed/immediate instantiation gap, the Figure 16
// dynamic-decomposition optimization ladder, Table 1's data-flow
// problem inventory, the §8 recompilation scenarios, and the §9 dgefa
// case study (strategy comparison and processor scaling).
//
// Usage:
//
//	fdpaper              # run everything
//	fdpaper -exp dgefa   # run one experiment:
//	                     #   table1 fig2v3 fig10v12 fig16 overlap
//	                     #   dgefa jacobi recompile
//
// -trace out.json collects every compile and run of the selected
// experiments into one Chrome trace_event file; -trace-text prints the
// human-readable summary to stderr instead (or in addition). -explain
// prints every compile's optimization remarks to stderr; -explain-json
// writes them as JSON lines to a file.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fortd"
	"fortd/internal/core"
	"fortd/internal/recompile"
	"fortd/internal/trace/analyze"
)

// tracer is shared by every compile and run of the selected
// experiments; nil when tracing is off.
var tracer *fortd.Trace

// explainer is shared by every compile of the selected experiments;
// nil when remark collection is off.
var explainer *fortd.Explain

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	traceOut := flag.String("trace", "", "write Chrome trace_event JSON to this file")
	traceText := flag.Bool("trace-text", false, "print a trace summary to stderr")
	explainText := flag.Bool("explain", false, "print the optimization report to stderr")
	explainJSON := flag.String("explain-json", "", "write optimization remarks as JSON lines to this file")
	flag.Parse()
	if *traceOut != "" || *traceText {
		tracer = fortd.NewTrace()
	}
	if *explainText || *explainJSON != "" {
		explainer = fortd.NewExplain()
	}
	defer flushTrace(*traceOut, *traceText)
	defer flushExplain(*explainJSON, *explainText)

	all := map[string]func(){
		"table1":    table1,
		"fig2v3":    fig2v3,
		"fig10v12":  fig10v12,
		"fig16":     fig16,
		"overlap":   overlapExp,
		"dgefa":     dgefa,
		"jacobi":    jacobi,
		"adi":       adi,
		"recompile": recompileExp,
	}
	order := []string{"table1", "fig2v3", "fig10v12", "fig16", "overlap", "dgefa", "jacobi", "adi", "recompile"}
	if *exp == "all" {
		for _, name := range order {
			all[name]()
		}
		return
	}
	fn, ok := all[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (have %v)\n", *exp, order)
		os.Exit(2)
	}
	fn()
}

func header(title string) {
	fmt.Printf("\n================ %s ================\n\n", title)
}

func flushTrace(out string, text bool) {
	if tracer == nil {
		return
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteChrome(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntrace: wrote %s\n", out)
	}
	if text {
		tracer.WriteText(os.Stderr)
	}
}

func flushExplain(out string, text bool) {
	if explainer == nil {
		return
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			log.Fatal(err)
		}
		if err := explainer.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nexplain: wrote %s\n", out)
	}
	if text {
		explainer.WriteText(os.Stderr)
	}
}

func compile(src string, opts fortd.Options) *fortd.Program {
	opts.Trace = tracer
	opts.Explain = explainer
	p, err := fortd.Compile(src, opts)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func run(p *fortd.Program, init map[string][]float64) *fortd.Result {
	r, err := fortd.NewRunner(fortd.WithInit(init), fortd.WithTrace(tracer)).Run(p)
	if err != nil {
		log.Fatal(err)
	}
	// every experiment validates against the sequential reference
	ref, err := fortd.NewRunner(fortd.WithInit(init)).RunReference(p)
	if err != nil {
		log.Fatal(err)
	}
	for name, want := range ref.Arrays {
		got := r.Arrays[name]
		for i := range want {
			d := got[i] - want[i]
			if d > 1e-6 || d < -1e-6 {
				log.Fatalf("wrong answer: %s[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
	}
	return r
}

// table1 prints the interprocedural data-flow problem inventory.
func table1() {
	header("Table 1: Interprocedural Fortran D data-flow problems")
	fmt.Printf("%-30s %-5s %-28s %s\n", "problem", "dir", "phase", "module")
	for _, p := range fortd.Table1() {
		fmt.Printf("%-30s %-5s %-28s %s\n", p.Name, p.Direction, p.Phase, p.Package)
	}
}

// fig2v3 contrasts compile-time generated code (Figure 2) with
// run-time resolution (Figure 3) on the Figure 1 program.
func fig2v3() {
	header("Figures 2 vs 3: compile-time code vs run-time resolution (P=4)")
	fmt.Printf("%8s | %12s %8s | %12s %8s | %9s\n",
		"N", "tCompile(µs)", "msgs", "tRuntime(µs)", "msgs", "slowdown")
	for _, n := range []int{100, 400, 1600, 4000} {
		init := map[string][]float64{"X": fortd.Ramp(n)}
		fast := run(compile(fortd.Fig1Src(n, 4), fortd.DefaultOptions()), init)
		opts := fortd.DefaultOptions()
		opts.Strategy = fortd.RuntimeResolution
		slow := run(compile(fortd.Fig1Src(n, 4), opts), init)
		fmt.Printf("%8d | %12.0f %8d | %12.0f %8d | %8.1fx\n",
			n, fast.Stats.Time, fast.Stats.Messages,
			slow.Stats.Time, slow.Stats.Messages,
			slow.Stats.Time/fast.Stats.Time)
	}
}

// fig10v12 contrasts delayed instantiation (Figure 10) with immediate
// instantiation (Figure 12) on the Figure 4 program.
func fig10v12() {
	header("Figures 10 vs 12: delayed vs immediate instantiation (P=4)")
	fmt.Printf("%8s | %12s %8s | %12s %8s | %10s\n",
		"N", "tDelayed(µs)", "msgs", "tImmed(µs)", "msgs", "msg ratio")
	for _, n := range []int{100, 200, 400} {
		init := map[string][]float64{
			"X": fortd.Ramp(n * n),
			"Y": fortd.Ramp(n * n),
		}
		fast := run(compile(fortd.Fig4Src(n, 4), fortd.DefaultOptions()), init)
		opts := fortd.DefaultOptions()
		opts.Strategy = fortd.Immediate
		slow := run(compile(fortd.Fig4Src(n, 4), opts), init)
		ratio := float64(slow.Stats.Messages) / float64(fast.Stats.Messages)
		fmt.Printf("%8d | %12.0f %8d | %12.0f %8d | %9.0fx\n",
			n, fast.Stats.Time, fast.Stats.Messages,
			slow.Stats.Time, slow.Stats.Messages, ratio)
	}
}

// fig16 runs the dynamic-decomposition optimization ladder.
func fig16() {
	header("Figure 16: dynamic data decomposition optimization ladder (T=25, P=4)")
	const T = 25
	levels := []struct {
		name  string
		level fortd.RemapLevel
	}{
		{"16a none", fortd.RemapNone},
		{"16b live decompositions", fortd.RemapLive},
		{"16c loop-invariant hoist", fortd.RemapHoist},
		{"16d array kills", fortd.RemapKills},
	}
	fmt.Printf("%-26s %10s %12s %12s\n", "level", "remaps", "words", "time(µs)")
	for _, l := range levels {
		opts := fortd.DefaultOptions()
		opts.RemapOpt = l.level
		res := run(compile(fortd.Fig15Src(T, 4), opts), map[string][]float64{"X": fortd.Ramp(100)})
		fmt.Printf("%-26s %10d %12d %12.0f\n", l.name, res.Stats.Remaps, res.Stats.Words, res.Stats.Time)
	}
	fmt.Printf("(paper's counts: 4T=%d, 2T=%d, 2, 1)\n", 4*T, 2*T)
}

// overlapExp reports the Figure 13 overlap regions.
func overlapExp() {
	header("Figure 13: overlap regions (Figure 1 program, P=4, block size 25)")
	p := compile(fortd.Fig1Src(100, 4), fortd.DefaultOptions())
	lo, hi := p.OverlapExtent("F1", "X", 0, 25)
	fmt.Printf("F1: X local extent with overlap = [%d:%d]  (paper: REAL X(30))\n", lo, hi)
	lo, hi = p.OverlapExtent("P1", "X", 0, 25)
	fmt.Printf("P1: X local extent with overlap = [%d:%d]\n", lo, hi)
}

// dgefa runs the §9 case study.
func dgefa() {
	header("§9 dgefa case study: strategy comparison (n=96, P=4)")
	const n = 96
	init := map[string][]float64{"a": fortd.DgefaMatrix(n)}
	variants := []struct {
		name string
		s    fortd.Strategy
	}{
		{"interprocedural", fortd.Interprocedural},
		{"immediate", fortd.Immediate},
		{"runtime-resolution", fortd.RuntimeResolution},
	}
	fmt.Printf("%-20s %12s %10s %12s %9s\n", "strategy", "time(µs)", "messages", "words", "vs hand")
	// the paper's §9 baseline: hand-written SPMD message passing
	hand, err := fortd.NewRunner(fortd.WithInit(init)).RunSPMD(fortd.DgefaHandSrc(n, 4), 4)
	if err != nil {
		log.Fatal(err)
	}
	base := hand.Stats.Time
	fmt.Printf("%-20s %12.0f %10d %12d %8.1fx\n",
		"hand-written", hand.Stats.Time, hand.Stats.Messages, hand.Stats.Words, 1.0)
	for _, v := range variants {
		opts := fortd.DefaultOptions()
		opts.P = 4
		opts.Strategy = v.s
		res := run(compile(fortd.DgefaSrc(n, 4), opts), init)
		fmt.Printf("%-20s %12.0f %10d %12d %8.1fx\n",
			v.name, res.Stats.Time, res.Stats.Messages, res.Stats.Words, res.Stats.Time/base)
	}

	header("§9 dgefa case study: processor scaling (interprocedural)")
	fmt.Printf("%6s |", "n\\P")
	procs := []int{1, 2, 4, 8, 16}
	for _, p := range procs {
		fmt.Printf(" %10d", p)
	}
	fmt.Println()
	for _, size := range []int{64, 96, 128} {
		fmt.Printf("%6d |", size)
		in := map[string][]float64{"a": fortd.DgefaMatrix(size)}
		for _, p := range procs {
			opts := fortd.DefaultOptions()
			opts.P = p
			res := run(compile(fortd.DgefaSrc(size, p), opts), in)
			fmt.Printf(" %9.0fµs", res.Stats.Time)
		}
		fmt.Println()
	}

	header("§9 dgefa case study: speedup and efficiency (n=96, interprocedural)")
	in := map[string][]float64{"a": fortd.DgefaMatrix(n)}
	sweep, err := analyze.RunSweep([]int{1, 2, 4, 8, 16}, func(p int) (analyze.Point, error) {
		opts := fortd.DefaultOptions()
		opts.P = p
		res := run(compile(fortd.DgefaSrc(n, p), opts), in)
		return analyze.Point{Time: res.Stats.Time, Msgs: res.Stats.Messages, Words: res.Stats.Words}, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sweep.WriteText(os.Stdout)
}

// jacobi reports stencil scaling.
func jacobi() {
	header("2-D Jacobi scaling (64x64, 10 steps)")
	const n, steps = 64, 10
	grid := make([]float64, n*n)
	for j := 0; j < n; j++ {
		grid[j] = 100
		grid[(n-1)*n+j] = 100
	}
	fmt.Printf("%4s %12s %10s %10s\n", "P", "time(µs)", "speedup", "msgs")
	var t1 float64
	for _, p := range []int{1, 2, 4, 8} {
		opts := fortd.DefaultOptions()
		opts.P = p
		res := run(compile(fortd.Jacobi2DSrc(n, steps, p), opts), map[string][]float64{"a": grid})
		if p == 1 {
			t1 = res.Stats.Time
		}
		fmt.Printf("%4d %12.0f %10.2f %10d\n", p, res.Stats.Time, t1/res.Stats.Time, res.Stats.Messages)
	}
}

// adi shows the §6 motivation: phases preferring opposite
// distributions — dynamic redistribution (two remaps per step) beats a
// statically-distributed pipelined boundary exchange.
func adi() {
	header("§6 motivation: ADI-style phases, static vs dynamic distribution (P=4)")
	fmt.Printf("%6s | %12s %8s %8s | %12s %8s %8s | %8s\n",
		"n", "tStatic(µs)", "msgs", "remaps", "tDynamic(µs)", "msgs", "remaps", "speedup")
	for _, n := range []int{32, 48, 64} {
		init := map[string][]float64{"a": fortd.Ramp(n * n)}
		st := run(compile(fortd.ADISrc(n, 2, 4, false), fortd.DefaultOptions()), init)
		dy := run(compile(fortd.ADISrc(n, 2, 4, true), fortd.DefaultOptions()), init)
		fmt.Printf("%6d | %12.0f %8d %8d | %12.0f %8d %8d | %7.1fx\n",
			n, st.Stats.Time, st.Stats.Messages, st.Stats.Remaps,
			dy.Stats.Time, dy.Stats.Messages, dy.Stats.Remaps,
			st.Stats.Time/dy.Stats.Time)
	}
}

// recompileExp demonstrates §8's recompilation analysis.
func recompileExp() {
	header("§8 recompilation analysis")
	base := `
      PROGRAM P
      PARAMETER (n$proc = 4)
      REAL A(100), B(100)
      DISTRIBUTE A(BLOCK)
      DISTRIBUTE B(BLOCK)
      call S1(A)
      call S2(B)
      END
      SUBROUTINE S1(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) + 1.0
      enddo
      END
      SUBROUTINE S2(X)
      REAL X(100)
      do i = 1,100
        X(i) = X(i) * 2.0
      enddo
      END
`
	scenarios := []struct {
		name string
		edit func(string) string
	}{
		{"no edit", func(s string) string { return s }},
		{"S2 body edit (interface unchanged)", func(s string) string {
			return replace(s, "X(i) * 2.0", "X(i) * 3.0")
		}},
		{"S2 redistributes X (interface change)", func(s string) string {
			return replace(s, "      SUBROUTINE S2(X)\n      REAL X(100)",
				"      SUBROUTINE S2(X)\n      REAL X(100)\n      DISTRIBUTE X(CYCLIC)")
		}},
		{"caller changes A's distribution", func(s string) string {
			return replace(s, "DISTRIBUTE A(BLOCK)", "DISTRIBUTE A(CYCLIC)")
		}},
	}
	snap := func(src string) *recompile.Database {
		c, err := core.Compile(src, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		return recompile.Snapshot(c)
	}
	old := snap(base)
	fmt.Printf("%-42s %s\n", "edit", "recompile set")
	for _, sc := range scenarios {
		cur := snap(sc.edit(base))
		plan := recompile.Plan(old, cur)
		fmt.Printf("%-42s %v\n", sc.name, plan)
	}
}

func replace(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	log.Fatalf("edit pattern %q not found", old)
	return s
}
