// Command fdbench runs the repository's standard compile+simulate
// benchmark workloads — the 2-D Jacobi stencil, the §9 dgefa case
// study, and the Figure 15 dynamic-distribution program — and writes
// one JSON snapshot per invocation, named BENCH_<yyyymmdd>.json, with
// the wall-clock time and the simulated run's message and word counts
// for each workload. Successive snapshots committed to the repository
// give a coarse performance history of both the compiler and the
// generated code.
//
// Each entry also records the code-generation worker count (-jobs) the
// compiles used, the warm-recompile hit rate of the summary cache
// (compile twice against one cache; the second compile's hit fraction),
// and — from one traced run distilled through internal/profile — the
// run's machine-wide blocked share and busy-time imbalance ratio, the
// pinned baseline for the planned communication-overlap pass.
// Results are sorted by workload name and serialized from a fixed
// struct, so snapshot key order is stable across runs and Go versions.
//
// -against compares the fresh results to an old snapshot, printing the
// per-workload deltas of wall time, communication volume and cache hit
// rate, and exits non-zero when any metric is worse than the old value
// by more than -threshold (relative; wall time is noisy across
// machines, so ci.sh treats that exit as a warning, not a failure).
// -report additionally renders each workload's traced run into one
// self-contained HTML performance report, with the comparison table
// appended when -against was given.
//
// Beyond the three paper-scale workloads (P=4), the suite carries
// scaled variants at P=256 and P=1024 — the 1-D Jacobi stencil, dgefa,
// and the Figure 15 redistribution pattern — that exercise the
// discrete-event machine backend at sizes the paper's testbed could
// not reach. -backend selects the machine engine for all runs; the
// scaled workloads are skipped under -backend goroutine, whose eager
// P²×LinkDepth channel buffers are infeasible at those sizes. -only
// restricts the run to a comma-separated list of workload names (CI
// uses it for a cheap P=256 smoke).
//
// Usage:
//
//	fdbench [-o file.json] [-runs N] [-jobs N] [-backend des|goroutine]
//	        [-only jacobi,dgefa] [-against BENCH_old.json]
//	        [-threshold 0.10] [-report out.html]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"fortd"
	"fortd/internal/benchcmp"
	"fortd/internal/profile"
	"fortd/internal/report"
	"fortd/internal/trace/analyze"
)

type workload struct {
	name string
	src  string
	init func() map[string][]float64
	// p marks a scaled workload (the processor count it targets; 0 for
	// the paper-scale set). Scaled workloads run only on the DES
	// backend and are excluded from the HTML report.
	p int
}

func workloads() []workload {
	return []workload{
		{
			name: "jacobi",
			src:  fortd.Jacobi2DSrc(64, 10, 4),
			init: func() map[string][]float64 {
				const n = 64
				grid := make([]float64, n*n)
				for j := 0; j < n; j++ {
					grid[j] = 100
					grid[(n-1)*n+j] = 100
				}
				return map[string][]float64{"a": grid}
			},
		},
		{
			name: "dgefa",
			src:  fortd.DgefaSrc(64, 4),
			init: func() map[string][]float64 {
				return map[string][]float64{"a": fortd.DgefaMatrix(64)}
			},
		},
		{
			name: "dyndist",
			src:  fortd.Fig15Src(25, 4),
			init: func() map[string][]float64 {
				return map[string][]float64{"X": fortd.Ramp(100)}
			},
		},
		// scaled variants: the DES backend's territory. The Jacobi
		// entries use the 1-D stencil so per-processor array copies stay
		// O(n) rather than O(n²) at P=1024.
		{
			name: "jacobi_p256",
			src:  fortd.Jacobi1DSrc(8192, 5, 256),
			init: func() map[string][]float64 {
				return map[string][]float64{"a": fortd.Ramp(8192)}
			},
			p: 256,
		},
		{
			name: "dgefa_p256",
			src:  fortd.DgefaSrc(128, 256),
			init: func() map[string][]float64 {
				return map[string][]float64{"a": fortd.DgefaMatrix(128)}
			},
			p: 256,
		},
		{
			name: "dyndist_p256",
			src:  fortd.Fig15ScaledSrc(4096, 3, 256),
			init: func() map[string][]float64 {
				return map[string][]float64{"X": fortd.Ramp(4096)}
			},
			p: 256,
		},
		{
			name: "jacobi_p1024",
			src:  fortd.Jacobi1DSrc(8192, 5, 1024),
			init: func() map[string][]float64 {
				return map[string][]float64{"a": fortd.Ramp(8192)}
			},
			p: 1024,
		},
		{
			name: "dgefa_p1024",
			src:  fortd.DgefaSrc(128, 1024),
			init: func() map[string][]float64 {
				return map[string][]float64{"a": fortd.DgefaMatrix(128)}
			},
			p: 1024,
		},
	}
}

func measure(w workload, runs, jobs int, backend fortd.Backend, overlap bool) benchcmp.Result {
	best := benchcmp.Result{Name: w.name, Jobs: jobs}
	opts := fortd.DefaultOptions().WithOverlap(overlap)
	opts.Jobs = jobs
	for i := 0; i < runs; i++ {
		init := w.init()
		start := time.Now()
		prog, err := fortd.Compile(w.src, opts)
		if err != nil {
			log.Fatalf("%s: %v", w.name, err)
		}
		res, err := fortd.NewRunner(fortd.WithInit(init), fortd.WithBackend(backend)).Run(prog)
		if err != nil {
			log.Fatalf("%s: %v", w.name, err)
		}
		wall := time.Since(start).Nanoseconds()
		if best.WallNs == 0 || wall < best.WallNs {
			best.WallNs = wall
		}
		best.Words = res.Stats.Words
		best.Msgs = res.Stats.Messages
	}
	// blocked share + imbalance: one traced run (outside the timing
	// loop) distilled through the profile artifact, so the snapshot
	// figure is byte-for-byte the definition fdprof and the daemon use
	prog, err := fortd.Compile(w.src, opts)
	if err != nil {
		log.Fatalf("%s: %v", w.name, err)
	}
	tr := fortd.NewTrace()
	if _, err := fortd.NewRunner(fortd.WithInit(w.init()), fortd.WithBackend(backend), fortd.WithTrace(tr)).Run(prog); err != nil {
		log.Fatalf("%s: %v", w.name, err)
	}
	if pf := profile.FromEvents(tr.Events(), profile.Meta{}); pf != nil {
		best.BlockedShare = pf.BlockedShare()
		best.Imbalance = pf.Imbalance()
	}

	// warm-recompile hit rate: compile twice against one cache and
	// report the second compile's hit fraction
	cacheOpts := opts
	cacheOpts.Cache = fortd.NewSummaryCache()
	if _, err := fortd.Compile(w.src, cacheOpts); err != nil {
		log.Fatalf("%s: %v", w.name, err)
	}
	warm, err := fortd.Compile(w.src, cacheOpts)
	if err != nil {
		log.Fatalf("%s: %v", w.name, err)
	}
	hits, misses := len(warm.CacheHits()), len(warm.CacheMisses())
	if hits+misses > 0 {
		best.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return best
}

// compareAgainst loads the old snapshot, prints the delta table to w,
// and returns the comparison. It is the testable core of -against.
func compareAgainst(w io.Writer, oldPath string, results []benchcmp.Result, threshold float64) (*benchcmp.Comparison, error) {
	old, err := benchcmp.Load(oldPath)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "comparing against %s (threshold %.0f%%)\n", oldPath, 100*threshold)
	c := benchcmp.Compare(old, results, threshold)
	if err := c.WriteText(w); err != nil {
		return nil, err
	}
	return c, nil
}

// writeReport renders each workload's traced run plus the optional
// comparison table into one self-contained HTML file.
func writeReport(path string, cmp *benchcmp.Comparison, jobs int) error {
	var secs []*analyze.Section
	for _, w := range workloads() {
		if w.p > 0 {
			continue // scaled runs would bloat the HTML with 10⁵+ events
		}
		opts := fortd.DefaultOptions()
		opts.Jobs = jobs
		sec, err := report.BuildSection(w.name, w.src, w.init(), opts, nil)
		if err != nil {
			return err
		}
		secs = append(secs, sec)
	}
	if cmp != nil {
		header, rows := cmp.Table()
		note := "positive delta = value grew; REGRESSED = worse beyond the threshold"
		secs = append(secs, &analyze.Section{
			Name: "benchmark comparison",
			Tables: []analyze.Table{
				{Title: "old vs new snapshot", Header: header, Rows: rows, Note: note},
			},
		})
	}
	return report.WriteFile(path, "fdbench", "standard workloads: jacobi, dgefa, dyndist", secs...)
}

func main() {
	out := flag.String("o", "", "output file (default BENCH_<yyyymmdd>.json)")
	runs := flag.Int("runs", 3, "measurement repetitions per workload (best is kept)")
	jobs := flag.Int("jobs", 1, "concurrent code-generation workers per compile")
	backendFlag := flag.String("backend", "des", "machine engine: des (discrete-event) or goroutine (reference; skips the scaled P>=256 workloads)")
	only := flag.String("only", "", "comma-separated workload names to run (empty: all)")
	against := flag.String("against", "", "old snapshot to compare against; exit non-zero on regression")
	threshold := flag.Float64("threshold", 0.10, "relative regression threshold for -against (0.10 = 10%)")
	reportOut := flag.String("report", "", "write the self-contained HTML performance report to this file")
	overlap := flag.Bool("overlap", true, "compile with the communication-overlap schedule (-overlap=false pins the blocking baseline)")
	flag.Parse()

	backend, err := fortd.ParseBackend(*backendFlag)
	if err != nil {
		log.Fatal(err)
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			selected[name] = true
		}
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("20060102"))
	}
	var results []benchcmp.Result
	for _, w := range workloads() {
		if len(selected) > 0 && !selected[w.name] {
			continue
		}
		if w.p > 0 && backend == fortd.BackendGoroutine {
			fmt.Printf("%-12s skipped: P=%d needs the des backend (goroutine links are O(P²))\n", w.name, w.p)
			continue
		}
		r := measure(w, *runs, *jobs, backend, *overlap)
		fmt.Printf("%-12s wall=%-12s words=%-8d msgs=%-6d cache-hit-rate=%.2f blocked-share=%.3f imbalance=%.3f\n",
			r.Name, time.Duration(r.WallNs), r.Words, r.Msgs, r.CacheHitRate, r.BlockedShare, r.Imbalance)
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)

	var cmp *benchcmp.Comparison
	if *against != "" {
		cmp, err = compareAgainst(os.Stdout, *against, results, *threshold)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *reportOut != "" {
		if err := writeReport(*reportOut, cmp, *jobs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("report: wrote %s\n", *reportOut)
	}
	if cmp != nil && len(cmp.Regressions()) > 0 {
		os.Exit(1)
	}
}
