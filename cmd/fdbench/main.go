// Command fdbench runs the repository's standard compile+simulate
// benchmark workloads — the 2-D Jacobi stencil, the §9 dgefa case
// study, and the Figure 15 dynamic-distribution program — and writes
// one JSON snapshot per invocation, named BENCH_<yyyymmdd>.json, with
// the wall-clock time and the simulated run's message and word counts
// for each workload. Successive snapshots committed to the repository
// give a coarse performance history of both the compiler and the
// generated code.
//
// Usage:
//
//	fdbench [-o file.json] [-runs N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"fortd"
)

// result is one workload's snapshot entry.
type result struct {
	Name string `json:"name"`
	// WallNs is the best-of-N wall-clock time for one compile plus one
	// simulated run, in nanoseconds.
	WallNs int64 `json:"wall_ns"`
	// Words and Msgs are the simulated run's communication totals —
	// the figures of merit the paper compares.
	Words int64 `json:"words"`
	Msgs  int64 `json:"msgs"`
}

type workload struct {
	name string
	src  string
	init func() map[string][]float64
}

func workloads() []workload {
	return []workload{
		{
			name: "jacobi",
			src:  fortd.Jacobi2DSrc(64, 10, 4),
			init: func() map[string][]float64 {
				const n = 64
				grid := make([]float64, n*n)
				for j := 0; j < n; j++ {
					grid[j] = 100
					grid[(n-1)*n+j] = 100
				}
				return map[string][]float64{"a": grid}
			},
		},
		{
			name: "dgefa",
			src:  fortd.DgefaSrc(64, 4),
			init: func() map[string][]float64 {
				return map[string][]float64{"a": fortd.DgefaMatrix(64)}
			},
		},
		{
			name: "dyndist",
			src:  fortd.Fig15Src(25, 4),
			init: func() map[string][]float64 {
				return map[string][]float64{"X": fortd.Ramp(100)}
			},
		},
	}
}

func measure(w workload, runs int) result {
	best := result{Name: w.name}
	for i := 0; i < runs; i++ {
		init := w.init()
		start := time.Now()
		prog, err := fortd.Compile(w.src, fortd.DefaultOptions())
		if err != nil {
			log.Fatalf("%s: %v", w.name, err)
		}
		res, err := fortd.NewRunner(fortd.WithInit(init)).Run(prog)
		if err != nil {
			log.Fatalf("%s: %v", w.name, err)
		}
		wall := time.Since(start).Nanoseconds()
		if best.WallNs == 0 || wall < best.WallNs {
			best.WallNs = wall
		}
		best.Words = res.Stats.Words
		best.Msgs = res.Stats.Messages
	}
	return best
}

func main() {
	out := flag.String("o", "", "output file (default BENCH_<yyyymmdd>.json)")
	runs := flag.Int("runs", 3, "measurement repetitions per workload (best is kept)")
	flag.Parse()

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("20060102"))
	}
	var results []result
	for _, w := range workloads() {
		r := measure(w, *runs)
		fmt.Printf("%-10s wall=%-12s words=%-8d msgs=%d\n",
			r.Name, time.Duration(r.WallNs), r.Words, r.Msgs)
		results = append(results, r)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
