// Command fdbench runs the repository's standard compile+simulate
// benchmark workloads — the 2-D Jacobi stencil, the §9 dgefa case
// study, and the Figure 15 dynamic-distribution program — and writes
// one JSON snapshot per invocation, named BENCH_<yyyymmdd>.json, with
// the wall-clock time and the simulated run's message and word counts
// for each workload. Successive snapshots committed to the repository
// give a coarse performance history of both the compiler and the
// generated code.
//
// Each entry also records the code-generation worker count (-jobs) the
// compiles used and the warm-recompile hit rate of the summary cache
// (compile twice against one cache; the second compile's hit fraction).
// Results are sorted by workload name and serialized from a fixed
// struct, so snapshot key order is stable across runs and Go versions.
//
// Usage:
//
//	fdbench [-o file.json] [-runs N] [-jobs N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"fortd"
)

// result is one workload's snapshot entry. Field order is the JSON key
// order; add new fields at the end to keep snapshot diffs readable.
type result struct {
	Name string `json:"name"`
	// WallNs is the best-of-N wall-clock time for one compile plus one
	// simulated run, in nanoseconds.
	WallNs int64 `json:"wall_ns"`
	// Words and Msgs are the simulated run's communication totals —
	// the figures of merit the paper compares.
	Words int64 `json:"words"`
	Msgs  int64 `json:"msgs"`
	// Jobs is the code-generation worker count the compiles ran with.
	Jobs int `json:"jobs"`
	// CacheHitRate is the summary-cache hit fraction of a warm
	// recompile (1.0 = every procedure reused).
	CacheHitRate float64 `json:"cache_hit_rate"`
}

type workload struct {
	name string
	src  string
	init func() map[string][]float64
}

func workloads() []workload {
	return []workload{
		{
			name: "jacobi",
			src:  fortd.Jacobi2DSrc(64, 10, 4),
			init: func() map[string][]float64 {
				const n = 64
				grid := make([]float64, n*n)
				for j := 0; j < n; j++ {
					grid[j] = 100
					grid[(n-1)*n+j] = 100
				}
				return map[string][]float64{"a": grid}
			},
		},
		{
			name: "dgefa",
			src:  fortd.DgefaSrc(64, 4),
			init: func() map[string][]float64 {
				return map[string][]float64{"a": fortd.DgefaMatrix(64)}
			},
		},
		{
			name: "dyndist",
			src:  fortd.Fig15Src(25, 4),
			init: func() map[string][]float64 {
				return map[string][]float64{"X": fortd.Ramp(100)}
			},
		},
	}
}

func measure(w workload, runs, jobs int) result {
	best := result{Name: w.name, Jobs: jobs}
	opts := fortd.DefaultOptions()
	opts.Jobs = jobs
	for i := 0; i < runs; i++ {
		init := w.init()
		start := time.Now()
		prog, err := fortd.Compile(w.src, opts)
		if err != nil {
			log.Fatalf("%s: %v", w.name, err)
		}
		res, err := fortd.NewRunner(fortd.WithInit(init)).Run(prog)
		if err != nil {
			log.Fatalf("%s: %v", w.name, err)
		}
		wall := time.Since(start).Nanoseconds()
		if best.WallNs == 0 || wall < best.WallNs {
			best.WallNs = wall
		}
		best.Words = res.Stats.Words
		best.Msgs = res.Stats.Messages
	}
	// warm-recompile hit rate: compile twice against one cache and
	// report the second compile's hit fraction
	cacheOpts := opts
	cacheOpts.Cache = fortd.NewSummaryCache()
	if _, err := fortd.Compile(w.src, cacheOpts); err != nil {
		log.Fatalf("%s: %v", w.name, err)
	}
	warm, err := fortd.Compile(w.src, cacheOpts)
	if err != nil {
		log.Fatalf("%s: %v", w.name, err)
	}
	hits, misses := len(warm.CacheHits()), len(warm.CacheMisses())
	if hits+misses > 0 {
		best.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	return best
}

func main() {
	out := flag.String("o", "", "output file (default BENCH_<yyyymmdd>.json)")
	runs := flag.Int("runs", 3, "measurement repetitions per workload (best is kept)")
	jobs := flag.Int("jobs", 1, "concurrent code-generation workers per compile")
	flag.Parse()

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("20060102"))
	}
	var results []result
	for _, w := range workloads() {
		r := measure(w, *runs, *jobs)
		fmt.Printf("%-10s wall=%-12s words=%-8d msgs=%-6d cache-hit-rate=%.2f\n",
			r.Name, time.Duration(r.WallNs), r.Words, r.Msgs, r.CacheHitRate)
		results = append(results, r)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}
