package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fortd/internal/benchcmp"
)

func writeSnapshot(t *testing.T, rs []benchcmp.Result) string {
	t.Helper()
	data, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_old.json")
	if err := os.WriteFile(path, append(data, '\n'), 0644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fresh() []benchcmp.Result {
	return []benchcmp.Result{
		{Name: "dgefa", WallNs: 10_000_000, Words: 5000, Msgs: 400, Jobs: 1, CacheHitRate: 1.0},
		{Name: "jacobi", WallNs: 5_000_000, Words: 2000, Msgs: 100, Jobs: 1, CacheHitRate: 1.0},
	}
}

// TestAgainstDetectsInjectedRegression: an old snapshot whose dgefa
// time is 20% better than the fresh result must produce a non-empty
// regression set at the default 10% threshold — the condition main
// turns into a non-zero exit.
func TestAgainstDetectsInjectedRegression(t *testing.T) {
	old := fresh()
	old[0].WallNs = int64(float64(old[0].WallNs) / 1.25)
	path := writeSnapshot(t, old)
	var buf bytes.Buffer
	cmp, err := compareAgainst(&buf, path, fresh(), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	regs := cmp.Regressions()
	if len(regs) != 1 || regs[0].Workload != "dgefa" || regs[0].Metric != "wall_ns" {
		t.Fatalf("regressions = %+v, want exactly dgefa/wall_ns", regs)
	}
	if !strings.Contains(buf.String(), "REGRESSED") {
		t.Errorf("output does not mark the regression:\n%s", buf.String())
	}
}

// TestAgainstIdenticalSnapshotPasses: comparing against an identical
// snapshot finds nothing, so main exits zero.
func TestAgainstIdenticalSnapshotPasses(t *testing.T) {
	path := writeSnapshot(t, fresh())
	var buf bytes.Buffer
	cmp, err := compareAgainst(&buf, path, fresh(), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if regs := cmp.Regressions(); len(regs) != 0 {
		t.Errorf("identical snapshots regressed: %+v", regs)
	}
}

// TestAgainstMissingFile: a bad -against path is an error, not a panic.
func TestAgainstMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if _, err := compareAgainst(&buf, filepath.Join(t.TempDir(), "nope.json"), fresh(), 0.10); err == nil {
		t.Error("compareAgainst(missing file) = nil error")
	}
}
