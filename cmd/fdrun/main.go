// Command fdrun compiles a Fortran D source file and executes the
// generated SPMD program on the simulated MIMD machine, printing the
// run's statistics and (optionally) the resulting arrays. Arrays are
// seeded with a deterministic ramp unless -zero is given.
//
// Usage:
//
//	fdrun [-p N] [-jobs N] [-strategy interproc|runtime|immediate] [-zero] [-print-arrays]
//	      [-trace out.json] [-trace-text] [-trace-json out.jsonl] [-profile out.json]
//	      [-explain] [-explain-json out.jsonl] [-report out.html] [-sweep "1,2,4,8"]
//	      [-spmd] [-deadline 30s] [-backend des|goroutine]
//	      [-fault-seed N] [-fault-delay P] [-fault-delay-max US] [-fault-dup P]
//	      [-fault-straggler "pid:skew,..."] file.f
//
// -trace writes Chrome trace_event JSON covering the compile phases and
// every message of the run (load in chrome://tracing or Perfetto);
// -trace-text prints the human-readable summary — including the
// per-processor run profile — to stderr; -trace-json writes the raw
// event stream as sorted JSON lines. -explain prints the compiler's
// optimization report to stderr; -explain-json writes the remarks as
// JSON lines to a file. -report renders the full self-contained HTML
// performance report (communication heatmap, hotspots, timeline,
// remarks, and a -sweep processor-scaling curve); it implies tracing
// and remark collection.
//
// -profile traces the run and writes its profile artifact — the
// stable, versioned per-site cost summary internal/profile defines —
// as canonical JSON. Equal seeded runs write byte-identical artifacts,
// so two -profile outputs diff cleanly; inspect, merge and compare
// them with fdprof.
//
// -spmd runs the input as a hand-written SPMD node program directly on
// the simulated machine, skipping compilation and the sequential
// check. -deadline bounds the run's wall-clock time: a run that would
// hang (mismatched sends/receives, a true deadlock) instead exits
// non-zero with the watchdog's per-processor deadlock report. The
// -fault-* flags build a seeded, deterministic fault-injection plan
// (delivery delays, duplicated messages, straggler processors); the
// same seed reproduces the same faults and the same trace exports.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"fortd"
	"fortd/internal/profile"
	"fortd/internal/report"
)

// parseStragglers parses "pid:skew,pid:skew" into a straggler map.
func parseStragglers(s string) (map[int]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[int]float64{}
	for _, part := range strings.Split(s, ",") {
		pidStr, skewStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad straggler %q, want pid:skew", part)
		}
		pid, err := strconv.Atoi(pidStr)
		if err != nil {
			return nil, fmt.Errorf("bad straggler pid %q: %v", pidStr, err)
		}
		skew, err := strconv.ParseFloat(skewStr, 64)
		if err != nil {
			return nil, fmt.Errorf("bad straggler skew %q: %v", skewStr, err)
		}
		out[pid] = skew
	}
	return out, nil
}

func main() {
	p := flag.Int("p", 0, "processor count (0: use the program's n$proc)")
	jobs := flag.Int("jobs", 1, "concurrent code-generation workers (output is identical for any value)")
	strategy := flag.String("strategy", "interproc", "interproc | runtime | immediate")
	zero := flag.Bool("zero", false, "zero-initialize arrays instead of a ramp")
	printArrays := flag.Bool("print-arrays", false, "print final array contents")
	check := flag.Bool("check", true, "compare against the sequential reference")
	traceOut := flag.String("trace", "", "write Chrome trace_event JSON to this file")
	traceText := flag.Bool("trace-text", false, "print a trace summary to stderr")
	traceJSON := flag.String("trace-json", "", "write the sorted trace event stream as JSON lines to this file")
	profileOut := flag.String("profile", "", "write the run's profile artifact (canonical JSON, see fdprof) to this file")
	explainText := flag.Bool("explain", false, "print the optimization report to stderr")
	explainJSON := flag.String("explain-json", "", "write optimization remarks as JSON lines to this file")
	reportOut := flag.String("report", "", "write the self-contained HTML performance report to this file")
	sweepFlag := flag.String("sweep", "1,2,4,8", "processor counts for the report's scaling sweep (empty: skip)")
	backendFlag := flag.String("backend", "des", "machine engine: des (discrete-event, scales to P=1024+) or goroutine (reference)")
	overlap := flag.Bool("overlap", true, "overlap communication with computation (post halo receives early, sink waits past interior iterations)")
	spmdMode := flag.Bool("spmd", false, "run the input as a hand-written SPMD node program (no compilation, no reference check)")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline for the simulated run (0: none)")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the deterministic fault-injection plan")
	faultDelay := flag.Float64("fault-delay", 0, "per-message probability of an injected delivery delay")
	faultDelayMax := flag.Float64("fault-delay-max", 200, "maximum injected delay in virtual µs")
	faultDup := flag.Float64("fault-dup", 0, "per-message probability of a duplicated delivery")
	faultStraggler := flag.String("fault-straggler", "", "straggler processors as pid:skew,... (skew multiplies flop cost)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fdrun [flags] file.f")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdrun:", err)
		os.Exit(1)
	}
	src := string(srcBytes)

	var tr *fortd.Trace
	if *traceOut != "" || *traceText || *traceJSON != "" || *profileOut != "" {
		tr = fortd.NewTrace()
	}
	var ex *fortd.Explain
	if *explainText || *explainJSON != "" {
		ex = fortd.NewExplain()
	}

	stragglers, err := parseStragglers(*faultStraggler)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdrun:", err)
		os.Exit(2)
	}
	var faults *fortd.FaultPlan
	if *faultDelay > 0 || *faultDup > 0 || len(stragglers) > 0 {
		faults = &fortd.FaultPlan{
			Seed:       *faultSeed,
			DelayProb:  *faultDelay,
			DelayMax:   *faultDelayMax,
			DupProb:    *faultDup,
			Stragglers: stragglers,
		}
	}

	var prog *fortd.Program
	opts := fortd.DefaultOptions()
	if !*spmdMode {
		opts.P = *p
		opts.Jobs = *jobs
		opts.Trace = tr
		opts.Explain = ex
		opts.Overlap = *overlap
		switch *strategy {
		case "interproc":
			opts.Strategy = fortd.Interprocedural
		case "runtime":
			opts.Strategy = fortd.RuntimeResolution
		case "immediate":
			opts.Strategy = fortd.Immediate
		}
		prog, err = fortd.Compile(src, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdrun:", err)
			os.Exit(1)
		}
	}

	init := map[string][]float64{}
	if !*zero {
		init = fortd.RampInit(src)
	}

	backend, err := fortd.ParseBackend(*backendFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdrun:", err)
		os.Exit(2)
	}
	runner := fortd.NewRunner(
		fortd.WithInit(init), fortd.WithTrace(tr), fortd.WithBackend(backend),
		fortd.WithDeadline(*deadline), fortd.WithFaults(faults),
	)
	var res *fortd.Result
	if *spmdMode {
		res, err = runner.RunSPMD(src, *p)
	} else {
		res, err = runner.Run(prog)
	}
	if err != nil {
		// a *DeadlockError renders the full per-processor report
		fmt.Fprintln(os.Stderr, "fdrun:", err)
		os.Exit(1)
	}
	if *spmdMode {
		fmt.Printf("spmd run\n")
	} else {
		fmt.Printf("P=%d strategy=%s\n", prog.P(), *strategy)
	}
	fmt.Printf("stats: %s\n", res.Stats)

	if *profileOut != "" {
		runP := *p
		if prog != nil {
			runP = prog.P()
		}
		var seed int64
		if faults != nil {
			seed = faults.Seed
		}
		pf := profile.FromEvents(tr.Events(), profile.Meta{
			ProgramHash: fortd.ProgramID(src, opts),
			Workload:    filepath.Base(flag.Arg(0)),
			P:           runP,
			Backend:     backend.String(),
			FaultSeed:   seed,
		})
		if pf == nil {
			fmt.Fprintln(os.Stderr, "fdrun: profile: trace carried no machine activity")
			os.Exit(1)
		}
		if err := profile.WriteFile(*profileOut, pf); err != nil {
			fmt.Fprintln(os.Stderr, "fdrun: profile:", err)
			os.Exit(1)
		}
		id, _ := pf.ID()
		fmt.Printf("profile: wrote %s (id %.12s, blocked-share %.3f)\n", *profileOut, id, pf.BlockedShare())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdrun:", err)
			os.Exit(1)
		}
		if err := tr.WriteChrome(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdrun: trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: wrote %s\n", *traceOut)
	}
	if *traceText {
		tr.WriteText(os.Stderr)
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		if err == nil {
			if err = tr.WriteJSONL(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdrun: trace-json:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: wrote %s\n", *traceJSON)
	}
	if *explainText {
		ex.WriteText(os.Stderr)
	}
	if *explainJSON != "" {
		f, err := os.Create(*explainJSON)
		if err == nil {
			if err = ex.WriteJSON(f); err == nil {
				err = f.Close()
			} else {
				f.Close()
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdrun: explain:", err)
			os.Exit(1)
		}
	}

	if *reportOut != "" && !*spmdMode {
		// The report runs its own traced compile+execution (plus the
		// sweep), so it works whether or not -trace was given.
		sweep, err := report.ParseSweep(*sweepFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdrun:", err)
			os.Exit(2)
		}
		sec, err := report.BuildSection(flag.Arg(0), src, init, opts, sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdrun: report:", err)
			os.Exit(1)
		}
		subtitle := fmt.Sprintf("strategy=%s", *strategy)
		if err := report.WriteFile(*reportOut, flag.Arg(0), subtitle, sec); err != nil {
			fmt.Fprintln(os.Stderr, "fdrun: report:", err)
			os.Exit(1)
		}
		fmt.Printf("report: wrote %s\n", *reportOut)
	}

	if *check && !*spmdMode {
		ref, err := fortd.NewRunner(fortd.WithInit(init)).RunReference(prog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdrun: reference:", err)
			os.Exit(1)
		}
		ok := true
		for name, want := range ref.Arrays {
			got := res.Arrays[name]
			for i := range want {
				d := got[i] - want[i]
				if d > 1e-9 || d < -1e-9 {
					fmt.Printf("MISMATCH %s[%d]: %v != %v\n", name, i, got[i], want[i])
					ok = false
					break
				}
			}
		}
		fmt.Printf("matches sequential reference: %v\n", ok)
		if !ok {
			os.Exit(1)
		}
	}

	if *printArrays {
		names := make([]string, 0, len(res.Arrays))
		for name := range res.Arrays {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			vals := res.Arrays[name]
			if len(vals) > 16 {
				fmt.Printf("%s(1:16) = %v ...\n", name, vals[:16])
			} else {
				fmt.Printf("%s = %v\n", name, vals)
			}
		}
	}
}
