// Command fdreport compiles a Fortran D source file, executes it on
// the simulated MIMD machine with tracing and optimization-remark
// collection enabled, and renders one self-contained HTML performance
// report: the P×P communication heatmap, the communication-hotspot
// table, the network-utilization timeline, per-processor time
// breakdown, message-size histogram, compiler remarks, and a
// processor-scaling sweep with speedup/efficiency (the paper's §9
// presentation). The output embeds all styling and SVG inline — no
// external assets — so the file can be attached to a PR or mailed
// around as-is.
//
// Usage:
//
//	fdreport [-p N] [-jobs N] [-strategy interproc|runtime|immediate]
//	         [-sweep "1,2,4,8"] [-zero] [-o report.html] file.f
//
// Arrays are seeded with a deterministic ramp unless -zero is given,
// matching fdrun's default initialization.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"fortd"
	"fortd/internal/report"
)

func main() {
	p := flag.Int("p", 0, "processor count (0: use the program's n$proc)")
	jobs := flag.Int("jobs", 1, "concurrent code-generation workers")
	strategy := flag.String("strategy", "interproc", "interproc | runtime | immediate")
	sweepFlag := flag.String("sweep", "1,2,4,8", "comma-separated processor counts for the scaling sweep (empty: skip the sweep)")
	zero := flag.Bool("zero", false, "zero-initialize arrays instead of a ramp")
	out := flag.String("o", "report.html", "output HTML file")
	title := flag.String("title", "", "report title (default: the source file name)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fdreport [flags] file.f")
		os.Exit(2)
	}
	srcBytes, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdreport:", err)
		os.Exit(1)
	}
	src := string(srcBytes)

	sweep, err := report.ParseSweep(*sweepFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdreport:", err)
		os.Exit(2)
	}

	opts := fortd.DefaultOptions()
	opts.P = *p
	opts.Jobs = *jobs
	switch *strategy {
	case "interproc":
		opts.Strategy = fortd.Interprocedural
	case "runtime":
		opts.Strategy = fortd.RuntimeResolution
	case "immediate":
		opts.Strategy = fortd.Immediate
	}

	init := map[string][]float64{}
	if !*zero {
		init = fortd.RampInit(src)
	}

	name := filepath.Base(flag.Arg(0))
	sec, err := report.BuildSection(name, src, init, opts, sweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdreport:", err)
		os.Exit(1)
	}
	t := *title
	if t == "" {
		t = name
	}
	subtitle := fmt.Sprintf("strategy=%s", *strategy)
	if err := report.WriteFile(*out, t, subtitle, sec); err != nil {
		fmt.Fprintln(os.Stderr, "fdreport:", err)
		os.Exit(1)
	}
	fmt.Printf("report: wrote %s\n", *out)
}
