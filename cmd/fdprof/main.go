// Command fdprof inspects, merges and compares the profile artifacts
// written by `fdrun -profile`, the fdbench pipeline and the fdd
// daemon's profile store (internal/profile schema v1).
//
// Usage:
//
//	fdprof top [-n 10] profile.json
//	fdprof diff [-send 0.10] [-blocked 0.10] [-msgs 0] [-words 0] old.json new.json
//	fdprof merge -o merged.json profiles/*.json
//	fdprof annotate profile.json source.f
//
// top ranks the profile's communication sites by cost (per-run means,
// so merged corpora read like one run). diff compares two artifacts
// site by site against per-metric relative thresholds and exits 1 when
// any site (or the machine-wide blocked share) regressed — the
// CI-gate shape. merge folds any number of artifacts (globs expanded)
// into one runs-weighted aggregate; merging is order-independent, so
// the output is byte-stable however the shell expands the glob.
// annotate interleaves the measured per-line communication cost with
// the Fortran source, in the style of the explain listing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fortd/internal/profile"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage:
  fdprof top [-n 10] profile.json
  fdprof diff [-send 0.10] [-blocked 0.10] [-msgs 0] [-words 0] old.json new.json
  fdprof merge -o merged.json profiles/*.json
  fdprof annotate profile.json source.f`)
	return 2
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		return usage(stderr)
	}
	switch args[0] {
	case "top":
		return runTop(args[1:], stdout, stderr)
	case "diff":
		return runDiff(args[1:], stdout, stderr)
	case "merge":
		return runMerge(args[1:], stdout, stderr)
	case "annotate":
		return runAnnotate(args[1:], stdout, stderr)
	}
	fmt.Fprintf(stderr, "fdprof: unknown command %q\n", args[0])
	return usage(stderr)
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "fdprof:", err)
	return 1
}

func runTop(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	fs.SetOutput(stderr)
	n := fs.Int("n", 10, "sites to show (0: all)")
	if fs.Parse(args) != nil || fs.NArg() != 1 {
		return usage(stderr)
	}
	p, err := profile.Load(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	if err := p.WriteTop(stdout, *n); err != nil {
		return fail(stderr, err)
	}
	return 0
}

func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := profile.DefaultThresholds()
	msgs := fs.Float64("msgs", def.Msgs, "relative threshold for per-site message count (negative: ignore)")
	words := fs.Float64("words", def.Words, "relative threshold for per-site words (negative: ignore)")
	send := fs.Float64("send", def.Send, "relative threshold for per-site send time (negative: ignore)")
	blocked := fs.Float64("blocked", def.Blocked, "relative threshold for per-site and machine-wide blocked time (negative: ignore)")
	if fs.Parse(args) != nil || fs.NArg() != 2 {
		return usage(stderr)
	}
	old, err := profile.Load(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	new, err := profile.Load(fs.Arg(1))
	if err != nil {
		return fail(stderr, err)
	}
	c := profile.Diff(old, new, profile.Thresholds{
		Msgs: *msgs, Words: *words, Send: *send, Blocked: *blocked,
	})
	if err := c.WriteText(stdout); err != nil {
		return fail(stderr, err)
	}
	if c.Regressed() {
		fmt.Fprintf(stdout, "%d site(s) regressed\n", len(c.Regressions()))
		return 1
	}
	return 0
}

func runMerge(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "output file (default: stdout)")
	if fs.Parse(args) != nil || fs.NArg() == 0 {
		return usage(stderr)
	}
	var profiles []*profile.Profile
	for _, pattern := range fs.Args() {
		// the shell usually expanded the glob already; Glob also accepts
		// literal paths, and an unexpanded pattern with no match errors
		names, err := filepath.Glob(pattern)
		if err != nil {
			return fail(stderr, fmt.Errorf("%s: %w", pattern, err))
		}
		if len(names) == 0 {
			return fail(stderr, fmt.Errorf("%s: no matching profiles", pattern))
		}
		for _, name := range names {
			p, err := profile.Load(name)
			if err != nil {
				return fail(stderr, err)
			}
			profiles = append(profiles, p)
		}
	}
	m := profile.Merge(profiles...)
	if m == nil {
		return fail(stderr, fmt.Errorf("nothing to merge"))
	}
	if *out == "" {
		if err := m.Encode(stdout); err != nil {
			return fail(stderr, err)
		}
	} else if err := profile.WriteFile(*out, m); err != nil {
		return fail(stderr, err)
	}
	id, _ := m.ID()
	fmt.Fprintf(stderr, "merged %d profile(s), %d runs (id %.12s)\n", len(profiles), m.Runs, id)
	return 0
}

func runAnnotate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("annotate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if fs.Parse(args) != nil || fs.NArg() != 2 {
		return usage(stderr)
	}
	p, err := profile.Load(fs.Arg(0))
	if err != nil {
		return fail(stderr, err)
	}
	src, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return fail(stderr, err)
	}
	if err := p.WriteAnnotated(stdout, string(src)); err != nil {
		return fail(stderr, err)
	}
	return 0
}
