package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fortd/internal/profile"
)

// fixture builds a small two-site artifact; scale inflates the SUB:7
// blocked time so a diff against the unscaled fixture regresses.
func fixture(blockedScale float64) *profile.Profile {
	return &profile.Profile{
		Schema: profile.SchemaVersion,
		Meta:   profile.Meta{ProgramHash: "deadbeef", Workload: "fix.f", P: 2, Backend: "des"},
		Runs:   1,
		Total: profile.Totals{
			Time: 100, Msgs: 3, Words: 48,
			Clock: 200, Compute: 150, Send: 20, Blocked: 30 * blockedScale,
			CriticalPath: 110,
		},
		Procs: []profile.ProcRow{
			{PID: 0, Clock: 100, Compute: 80, Send: 20, Blocked: 0},
			{PID: 1, Clock: 100, Compute: 70, Send: 0, Blocked: 30 * blockedScale},
		},
		Sites: []profile.SiteRow{
			{Proc: "MAIN", Line: 3, PID: -1, Op: "send", Msgs: 2, Words: 32, Send: 20, CPShare: 0.2},
			{Proc: "SUB", Line: 7, PID: -1, Op: "recv", Msgs: 1, Words: 16, Blocked: 30 * blockedScale, CPShare: 0.3},
		},
		Histogram: []profile.Bucket{{Lo: 1, Hi: 64, Msgs: 3, Words: 48}},
	}
}

func writeFixture(t *testing.T, name string, p *profile.Profile) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := profile.WriteFile(path, p); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTop(t *testing.T) {
	path := writeFixture(t, "p.json", fixture(1))
	var out, errb bytes.Buffer
	if code := run([]string{"top", "-n", "5", path}, &out, &errb); code != 0 {
		t.Fatalf("top = %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"MAIN:3", "SUB:7", "blocked-share"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("top output lacks %q:\n%s", want, out.String())
		}
	}
}

func TestDiffExitCodes(t *testing.T) {
	base := writeFixture(t, "old.json", fixture(1))
	same := writeFixture(t, "same.json", fixture(1))
	worse := writeFixture(t, "worse.json", fixture(1.5))

	var out, errb bytes.Buffer
	if code := run([]string{"diff", base, same}, &out, &errb); code != 0 {
		t.Errorf("self-diff = %d, want 0\n%s%s", code, out.String(), errb.String())
	}
	out.Reset()
	if code := run([]string{"diff", base, worse}, &out, &errb); code != 1 {
		t.Errorf("regressed diff = %d, want 1\n%s", code, out.String())
	}
	if s := out.String(); !strings.Contains(s, "SUB:7") || !strings.Contains(s, "regression") {
		t.Errorf("diff output does not flag SUB:7:\n%s", s)
	}
	// a loose threshold waves the same regression through
	out.Reset()
	if code := run([]string{"diff", "-blocked", "0.60", base, worse}, &out, &errb); code != 0 {
		t.Errorf("diff with 60%% threshold = %d, want 0\n%s", code, out.String())
	}
}

func TestMerge(t *testing.T) {
	dir := t.TempDir()
	for i, name := range []string{"a.json", "b.json"} {
		p := fixture(float64(i + 1))
		if err := profile.WriteFile(filepath.Join(dir, name), p); err != nil {
			t.Fatal(err)
		}
	}
	outPath := filepath.Join(dir, "merged.json")
	var out, errb bytes.Buffer
	if code := run([]string{"merge", "-o", outPath, filepath.Join(dir, "[ab].json")}, &out, &errb); code != 0 {
		t.Fatalf("merge = %d, stderr: %s", code, errb.String())
	}
	m, err := profile.Load(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 2 || m.Total.Msgs != 6 {
		t.Errorf("merged runs=%d msgs=%d, want 2, 6", m.Runs, m.Total.Msgs)
	}
	if code := run([]string{"merge", filepath.Join(dir, "nosuch-*.json")}, &out, &errb); code != 1 {
		t.Errorf("merge with no matches = %d, want 1", code)
	}
}

func TestAnnotate(t *testing.T) {
	prof := writeFixture(t, "p.json", fixture(1))
	src := filepath.Join(t.TempDir(), "fix.f")
	lines := []string{
		"      PROGRAM MAIN", "      REAL A(100)",
		"      CALL SUB(A)", "      END",
		"      SUBROUTINE SUB(A)", "      REAL A(100)",
		"      A(1) = A(2)", "      END",
	}
	if err := os.WriteFile(src, []byte(strings.Join(lines, "\n")+"\n"), 0644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"annotate", prof, src}, &out, &errb); code != 0 {
		t.Fatalf("annotate = %d, stderr: %s", code, errb.String())
	}
	if s := out.String(); !strings.Contains(s, "!prof") || !strings.Contains(s, "CALL SUB(A)") {
		t.Errorf("annotate output:\n%s", s)
	}
}

func TestUsageAndErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no args = %d, want 2", code)
	}
	if code := run([]string{"bogus"}, &out, &errb); code != 2 {
		t.Errorf("unknown command = %d, want 2", code)
	}
	if code := run([]string{"top", filepath.Join(t.TempDir(), "missing.json")}, &out, &errb); code != 1 {
		t.Errorf("top missing file = %d, want 1", code)
	}
}
